"""Declarative farm-of-farms topology, lowered by compiler passes.

GQ scales by replicating subfarms — each an independent habitat with
its own VLANs and containment servers (§3, Figure 3) — across however
many physical hosts the experimenter owns.  This module makes that
layout *data*: a :class:`FarmTopology` declares subfarm counts, VLAN
ranges, containment-server pools, service placement, and the host
inventory; :meth:`FarmTopology.compile` lowers the declaration through
a fixed sequence of named passes (the FireSim topology-with-passes
pattern) into a concrete :class:`Placement`:

``normalize``
    fill defaulted per-subfarm entries and apply explicit overrides.
``validate_hosts``
    host names unique, addresses well-formed, worker caps sane.
``assign_vlans``
    give every subfarm a disjoint VLAN range; overlapping explicit
    ranges and 802.1Q exhaustion (id > 4094) are compile errors.
``allocate_cs``
    mint each subfarm's containment-server pool.
``place_services``
    pin each containment service (dns, smtp, http, ...) to a CS in
    every subfarm, round-robin over the pool.
``pack_shards``
    group subfarms into campaign shards and assign each shard to a
    host — explicit pins win, the rest round-robin; pinning one shard
    to two hosts or to an unknown host is a compile error.
``validate_placement``
    every shard landed on a known host and no VLAN is claimed twice.

A failing pass raises :class:`TopologyError` carrying a structured
``errors`` list (``{"pass", "error", "detail"}`` dicts), so a bad
placement dies loudly at compile time — never as a mystery mid-
campaign.  Both the topology and the compiled placement round-trip
through JSON with stable sha256 digests, and
:meth:`Placement.campaign` derives the :class:`~repro.parallel.campaign.Campaign`
whose shards realise the placement — placement is data the scheduler
consumes, not code.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.parallel.campaign import Campaign, ShardSpec, derive_seed

__all__ = [
    "FarmTopology",
    "HostSpec",
    "Placement",
    "TopologyError",
    "DEFAULT_SERVICES",
    "MAX_VLAN_ID",
]

DEFAULT_SERVICES: Tuple[str, ...] = ("dns", "smtp", "http")
MAX_VLAN_ID = 4094  # highest usable 802.1Q VLAN id


class TopologyError(ValueError):
    """A topology failed to compile.

    ``errors`` is the structured form: one ``{"pass": name,
    "error": code, "detail": human_text}`` dict per problem the
    failing pass recorded, so tooling can match on codes instead of
    parsing the message.
    """

    def __init__(self, message: str,
                 errors: Optional[List[dict]] = None) -> None:
        super().__init__(message)
        self.errors: List[dict] = list(errors or [])


def _reject_unknown_keys(data: dict, allowed: Sequence[str],
                         where: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise TopologyError(
            f"unknown {where} keys: {', '.join(unknown)}",
            errors=[{"pass": "parse", "error": "unknown_key",
                     "detail": f"{where} key {key!r}"}
                    for key in unknown])


class HostSpec:
    """One machine in the farm inventory.

    ``address`` is ``"local"`` (run shards in-process pool workers) or
    ``"host:port"`` of a running ``python -m repro.parallel.worker``
    agent.  ``max_workers`` caps how many shards the scheduler may
    place there at once; ``cpus`` is documentation the scheduling-
    honesty record can cross-check against what workers report.
    """

    __slots__ = ("name", "address", "cpus", "max_workers")

    def __init__(self, name: str, address: str = "local",
                 cpus: Optional[int] = None,
                 max_workers: Optional[int] = None) -> None:
        self.name = str(name)
        self.address = str(address)
        self.cpus = cpus
        self.max_workers = max_workers

    def to_dict(self) -> dict:
        return {"name": self.name, "address": self.address,
                "cpus": self.cpus, "max_workers": self.max_workers}

    @classmethod
    def from_dict(cls, data: dict) -> "HostSpec":
        _reject_unknown_keys(data, ("name", "address", "cpus",
                                    "max_workers"), "host")
        return cls(name=data["name"],
                   address=data.get("address", "local"),
                   cpus=data.get("cpus"),
                   max_workers=data.get("max_workers"))

    def __repr__(self) -> str:
        return f"<HostSpec {self.name} @ {self.address}>"


_TOPOLOGY_KEYS = (
    "name", "subfarms", "hosts", "vlan_base", "vlans_per_subfarm",
    "cs_per_subfarm", "services", "subfarm_specs",
    "subfarms_per_shard", "inmates_per_subfarm", "metadata",
)
_SUBFARM_KEYS = ("name", "vlans", "host", "cs")


class FarmTopology:
    """The declarative layer: what the farm-of-farms should look like.

    ``subfarm_specs[i]`` optionally overrides subfarm *i* with any of
    ``name`` / ``vlans`` (explicit VLAN id list) / ``host`` (pin to a
    host name) / ``cs`` (explicit CS name list).  Everything else is
    derived by the compile passes.
    """

    def __init__(self, name: str, subfarms: int,
                 hosts: Optional[Sequence[HostSpec]] = None,
                 vlan_base: int = 100,
                 vlans_per_subfarm: int = 1,
                 cs_per_subfarm: int = 1,
                 services: Sequence[str] = DEFAULT_SERVICES,
                 subfarm_specs: Optional[Sequence[dict]] = None,
                 subfarms_per_shard: int = 1,
                 inmates_per_subfarm: int = 2,
                 metadata: Optional[Dict[str, Any]] = None) -> None:
        self.name = str(name)
        self.subfarms = int(subfarms)
        self.hosts: List[HostSpec] = list(hosts) if hosts \
            else [HostSpec("local")]
        self.vlan_base = int(vlan_base)
        self.vlans_per_subfarm = int(vlans_per_subfarm)
        self.cs_per_subfarm = int(cs_per_subfarm)
        self.services: Tuple[str, ...] = tuple(services)
        self.subfarm_specs: List[dict] = [dict(s)
                                          for s in (subfarm_specs or [])]
        self.subfarms_per_shard = int(subfarms_per_shard)
        self.inmates_per_subfarm = int(inmates_per_subfarm)
        self.metadata = dict(metadata or {})

    # ------------------------------------------------------------------
    # Serialization — strict both ways, digest-stable
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "subfarms": self.subfarms,
            "hosts": [host.to_dict() for host in self.hosts],
            "vlan_base": self.vlan_base,
            "vlans_per_subfarm": self.vlans_per_subfarm,
            "cs_per_subfarm": self.cs_per_subfarm,
            "services": list(self.services),
            "subfarm_specs": [dict(s) for s in self.subfarm_specs],
            "subfarms_per_shard": self.subfarms_per_shard,
            "inmates_per_subfarm": self.inmates_per_subfarm,
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FarmTopology":
        _reject_unknown_keys(data, _TOPOLOGY_KEYS, "topology")
        for spec in data.get("subfarm_specs") or []:
            _reject_unknown_keys(spec, _SUBFARM_KEYS, "subfarm")
        return cls(
            name=data["name"],
            subfarms=data["subfarms"],
            hosts=[HostSpec.from_dict(h) for h in data.get("hosts") or []]
            or None,
            vlan_base=data.get("vlan_base", 100),
            vlans_per_subfarm=data.get("vlans_per_subfarm", 1),
            cs_per_subfarm=data.get("cs_per_subfarm", 1),
            services=data.get("services", DEFAULT_SERVICES),
            subfarm_specs=data.get("subfarm_specs"),
            subfarms_per_shard=data.get("subfarms_per_shard", 1),
            inmates_per_subfarm=data.get("inmates_per_subfarm", 2),
            metadata=data.get("metadata"),
        )

    def spec_digest(self) -> str:
        """sha256 over the canonical JSON of the declaration."""
        blob = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    # ------------------------------------------------------------------
    # The compiler: lower the declaration through named passes
    # ------------------------------------------------------------------
    def compile(self) -> "Placement":
        state = _CompileState(self)
        for pass_name, pass_fn in (
            ("normalize", _pass_normalize),
            ("validate_hosts", _pass_validate_hosts),
            ("assign_vlans", _pass_assign_vlans),
            ("allocate_cs", _pass_allocate_cs),
            ("place_services", _pass_place_services),
            ("pack_shards", _pass_pack_shards),
            ("validate_placement", _pass_validate_placement),
        ):
            state.current_pass = pass_name
            pass_fn(state)
            state.passes_used.append(pass_name)
            if state.errors:
                raise TopologyError(
                    f"topology {self.name!r} failed pass "
                    f"{pass_name!r}: "
                    + "; ".join(e["detail"] for e in state.errors),
                    errors=state.errors)
        return Placement(
            topology_name=self.name,
            topology_digest=self.spec_digest(),
            passes_used=list(state.passes_used),
            subfarms=state.subfarms,
            shards=state.shards,
            hosts={host.name: host.to_dict() for host in self.hosts},
            inmates_per_subfarm=self.inmates_per_subfarm,
        )

    def __repr__(self) -> str:
        return (f"<FarmTopology {self.name!r} subfarms={self.subfarms} "
                f"hosts={len(self.hosts)}>")


class _CompileState:
    """Mutable scratchpad threaded through the passes."""

    def __init__(self, topo: FarmTopology) -> None:
        self.topo = topo
        self.current_pass = ""
        self.passes_used: List[str] = []
        self.errors: List[dict] = []
        self.subfarms: List[dict] = []
        self.shards: List[dict] = []

    def error(self, code: str, detail: str) -> None:
        self.errors.append({"pass": self.current_pass, "error": code,
                            "detail": detail})


def _pass_normalize(state: _CompileState) -> None:
    topo = state.topo
    if topo.subfarms < 1:
        state.error("bad_count",
                    f"subfarms must be >= 1, got {topo.subfarms}")
        return
    if topo.subfarms_per_shard < 1:
        state.error("bad_count",
                    "subfarms_per_shard must be >= 1, got "
                    f"{topo.subfarms_per_shard}")
        return
    if len(topo.subfarm_specs) > topo.subfarms:
        state.error("too_many_overrides",
                    f"{len(topo.subfarm_specs)} subfarm overrides for "
                    f"{topo.subfarms} subfarms")
        return
    for index in range(topo.subfarms):
        override = topo.subfarm_specs[index] \
            if index < len(topo.subfarm_specs) else {}
        unknown = sorted(set(override) - set(_SUBFARM_KEYS))
        for key in unknown:
            state.error("unknown_key",
                        f"subfarm {index} override key {key!r}")
        state.subfarms.append({
            "index": index,
            "name": str(override.get("name") or f"sf-{index}"),
            "vlans": list(override["vlans"])
            if override.get("vlans") is not None else None,
            "host": override.get("host"),
            "cs": list(override["cs"])
            if override.get("cs") is not None else None,
            "services": {},
        })
    names = [sf["name"] for sf in state.subfarms]
    for name in sorted({n for n in names if names.count(n) > 1}):
        state.error("duplicate_subfarm",
                    f"subfarm name {name!r} used more than once")


def _pass_validate_hosts(state: _CompileState) -> None:
    seen: Dict[str, int] = {}
    for host in state.topo.hosts:
        if host.name in seen:
            state.error("duplicate_host",
                        f"host name {host.name!r} declared twice")
        seen[host.name] = 1
        if host.address != "local":
            name, _, port = host.address.rpartition(":")
            if not name or not port.isdigit():
                state.error("bad_address",
                            f"host {host.name!r} address "
                            f"{host.address!r} is neither 'local' nor "
                            "'host:port'")
        if host.max_workers is not None and host.max_workers < 1:
            state.error("bad_cap",
                        f"host {host.name!r} max_workers must be >= 1, "
                        f"got {host.max_workers}")


def _pass_assign_vlans(state: _CompileState) -> None:
    topo = state.topo
    if topo.vlans_per_subfarm < 1:
        state.error("bad_count", "vlans_per_subfarm must be >= 1, got "
                    f"{topo.vlans_per_subfarm}")
        return
    next_vlan = topo.vlan_base
    claimed: Dict[int, str] = {}
    for sf in state.subfarms:
        if sf["vlans"] is None:
            sf["vlans"] = list(range(next_vlan,
                                     next_vlan + topo.vlans_per_subfarm))
            next_vlan += topo.vlans_per_subfarm
        for vlan in sf["vlans"]:
            if not isinstance(vlan, int) or vlan < 1 \
                    or vlan > MAX_VLAN_ID:
                state.error("vlan_exhausted",
                            f"subfarm {sf['name']!r} VLAN {vlan!r} "
                            f"outside 1..{MAX_VLAN_ID} — raise "
                            "vlan_base headroom or shrink the farm")
            elif vlan in claimed:
                state.error("vlan_overlap",
                            f"VLAN {vlan} claimed by both "
                            f"{claimed[vlan]!r} and {sf['name']!r}")
            else:
                claimed[vlan] = sf["name"]


def _pass_allocate_cs(state: _CompileState) -> None:
    topo = state.topo
    if topo.cs_per_subfarm < 1:
        state.error("bad_count", "cs_per_subfarm must be >= 1, got "
                    f"{topo.cs_per_subfarm}")
        return
    for sf in state.subfarms:
        if sf["cs"] is None:
            sf["cs"] = [f"cs-{sf['name']}-{i}"
                        for i in range(topo.cs_per_subfarm)]
        elif not sf["cs"]:
            state.error("empty_cs_pool",
                        f"subfarm {sf['name']!r} declares an empty "
                        "containment-server pool")


def _pass_place_services(state: _CompileState) -> None:
    for sf in state.subfarms:
        pool = sf["cs"] or []
        if not pool:
            continue  # already an error from allocate_cs
        sf["services"] = {
            service: pool[position % len(pool)]
            for position, service in enumerate(state.topo.services)
        }


def _pass_pack_shards(state: _CompileState) -> None:
    topo = state.topo
    host_names = [host.name for host in topo.hosts]
    groups = [state.subfarms[i:i + topo.subfarms_per_shard]
              for i in range(0, len(state.subfarms),
                             topo.subfarms_per_shard)]
    for index, group in enumerate(groups):
        pins = sorted({sf["host"] for sf in group
                       if sf["host"] is not None})
        for pin in pins:
            if pin not in host_names:
                state.error("unknown_host",
                            f"subfarm {group[0]['name']!r} shard pins "
                            f"unknown host {pin!r} (inventory: "
                            f"{', '.join(host_names)})")
        if len(pins) > 1:
            state.error("split_shard",
                        f"shard {index} subfarms pin different hosts: "
                        f"{', '.join(repr(p) for p in pins)}")
        if pins and pins[0] in host_names and len(pins) == 1:
            host = pins[0]
        else:
            host = host_names[index % len(host_names)]
        for sf in group:
            sf["host"] = host
        state.shards.append({
            "index": index,
            "host": host,
            "subfarms": [sf["name"] for sf in group],
        })


def _pass_validate_placement(state: _CompileState) -> None:
    host_names = {host.name for host in state.topo.hosts}
    claimed: Dict[int, str] = {}
    for shard in state.shards:
        if shard["host"] not in host_names:
            state.error("unknown_host",
                        f"shard {shard['index']} placed on unknown "
                        f"host {shard['host']!r}")
    for sf in state.subfarms:
        for vlan in sf["vlans"] or []:
            if vlan in claimed and claimed[vlan] != sf["name"]:
                state.error("vlan_overlap",
                            f"placement claims VLAN {vlan} for both "
                            f"{claimed[vlan]!r} and {sf['name']!r}")
            claimed[vlan] = sf["name"]


_PLACEMENT_KEYS = ("topology", "topology_digest", "passes_used",
                   "subfarms", "shards", "hosts",
                   "inmates_per_subfarm")


class Placement:
    """The compiled layer: concrete subfarm → VLAN/CS/host mapping.

    Pure data — JSON round-trips losslessly and :meth:`digest` is
    stable, so a placement can be logged next to the campaign it drove
    and replayed later.  :meth:`campaign` derives the shard specs;
    :meth:`endpoints` lists the worker-agent addresses the scheduler
    should dial.
    """

    def __init__(self, topology_name: str, topology_digest: str,
                 passes_used: List[str], subfarms: List[dict],
                 shards: List[dict], hosts: Dict[str, dict],
                 inmates_per_subfarm: int = 2) -> None:
        self.topology_name = topology_name
        self.topology_digest = topology_digest
        self.passes_used = list(passes_used)
        self.subfarms = [dict(sf) for sf in subfarms]
        self.shards = [dict(sh) for sh in shards]
        self.hosts = {name: dict(info)
                      for name, info in sorted(hosts.items())}
        self.inmates_per_subfarm = int(inmates_per_subfarm)

    def to_dict(self) -> dict:
        return {
            "topology": self.topology_name,
            "topology_digest": self.topology_digest,
            "passes_used": list(self.passes_used),
            "subfarms": [dict(sf) for sf in self.subfarms],
            "shards": [dict(sh) for sh in self.shards],
            "hosts": {name: dict(info)
                      for name, info in self.hosts.items()},
            "inmates_per_subfarm": self.inmates_per_subfarm,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Placement":
        _reject_unknown_keys(data, _PLACEMENT_KEYS, "placement")
        return cls(topology_name=data["topology"],
                   topology_digest=data["topology_digest"],
                   passes_used=data.get("passes_used") or [],
                   subfarms=data["subfarms"],
                   shards=data["shards"],
                   hosts=data.get("hosts") or {},
                   inmates_per_subfarm=data.get("inmates_per_subfarm",
                                                2))

    def digest(self) -> str:
        """sha256 over the canonical JSON of the placement."""
        blob = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    # ------------------------------------------------------------------
    def endpoints(self) -> List[str]:
        """Worker-agent ``host:port`` addresses, host-name order.

        Empty when every host is ``"local"`` — the scheduler then uses
        the in-process spawn pool.
        """
        return [info["address"]
                for _name, info in sorted(self.hosts.items())
                if info.get("address", "local") != "local"]

    def campaign(self, task: str,
                 params: Optional[Dict[str, Any]] = None,
                 base_seed: int = 0,
                 timeout: Optional[float] = None) -> Campaign:
        """One :class:`ShardSpec` per placed shard.

        Each shard's params carry its subfarm count and derived seed;
        the campaign metadata records the placement digest and the
        shard → host map so a result file names where its shards were
        *supposed* to run (the scheduling-honesty record says where
        they actually did).
        """
        shards = []
        for placed in self.shards:
            index = placed["index"]
            shard_params = dict(params or {})
            shard_params.setdefault("subfarms", len(placed["subfarms"]))
            shard_params.setdefault("inmates", self.inmates_per_subfarm)
            shard_params.setdefault("seed", derive_seed(base_seed, index))
            shards.append(ShardSpec(
                index, task, shard_params, timeout=timeout,
                label=f"{self.topology_name}-{index}"))
        return Campaign(
            f"topology-{self.topology_name}", shards,
            base_seed=base_seed,
            metadata={
                "kind": "topology",
                "task": task,
                "placement_digest": self.digest(),
                "shard_hosts": {str(sh["index"]): sh["host"]
                                for sh in self.shards},
            })

    def __repr__(self) -> str:
        return (f"<Placement {self.topology_name!r} "
                f"subfarms={len(self.subfarms)} "
                f"shards={len(self.shards)} hosts={len(self.hosts)}>")
