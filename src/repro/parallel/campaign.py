"""Campaign descriptions: what a sharded farm run *is*.

GQ's subfarms are independent habitats precisely so experiments can
proceed in parallel (§3, Figure 3); the paper's measurement campaigns
(Table 1, §6) are seed and configuration sweeps over whole-farm runs.
This module describes such a campaign as data: a :class:`Campaign` is
an ordered list of :class:`ShardSpec` entries, each naming a *shard
task* (an importable function), a JSON-safe parameter dict, and a
per-shard timeout.

Because a spec is pure data it can be shipped to a spawn-started
worker process, logged next to the results it produced, and replayed
later — the same property :meth:`repro.farm.FarmConfig.to_dict` gives
individual farm configs.

Determinism contract
--------------------
Shards must be mutually independent: a shard task builds its own farm
from its own parameters and returns a JSON-safe dict.  Seeds for the
shards of one campaign are derived with :func:`derive_seed`, which
splits a base seed into disjoint, order-independent per-shard streams;
running the same campaign serially or across any number of workers
therefore yields byte-identical per-shard payloads, and the merge
stage (:mod:`repro.parallel.merge`) orders by shard index so the
campaign digest is byte-identical too.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "Campaign",
    "ShardSpec",
    "derive_seed",
    "resolve_task",
    "task_name",
]


def derive_seed(base: int, shard: int) -> int:
    """Derive the RNG seed for ``shard`` from a campaign's base seed.

    Hash-based splitting (rather than ``base + shard``) keeps the
    per-shard streams disjoint even when campaigns themselves use
    neighbouring base seeds: seed 1/shard 0 and seed 0/shard 1 share
    nothing.  Deterministic across processes and platforms.
    """
    data = f"gq.parallel/{base}/{shard}".encode()
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


def resolve_task(task: str) -> Callable[..., dict]:
    """Import a shard task from its ``"pkg.module:function"`` name."""
    module_name, _, attr = task.partition(":")
    if not module_name or not attr:
        raise ValueError(
            f"task must look like 'pkg.module:function', got {task!r}")
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(f"module {module_name!r} has no task {attr!r}") \
            from exc
    if not callable(fn):
        raise ValueError(f"task {task!r} is not callable")
    return fn


def task_name(fn: Callable) -> str:
    """The ``"pkg.module:function"`` name of a module-level callable."""
    return f"{fn.__module__}:{fn.__qualname__}"


class ShardSpec:
    """One unit of campaign work: a task name plus JSON-safe params.

    ``params`` must round-trip through JSON — that is what makes the
    spec shippable to a spawn-started worker and loggable next to its
    result.  ``timeout`` is wall-clock seconds the pool allows the
    shard before killing its worker (``None`` = no limit; only
    enforced when the shard runs in a subprocess).
    """

    __slots__ = ("index", "task", "params", "timeout", "label")

    def __init__(self, index: int, task: str,
                 params: Optional[Dict[str, Any]] = None,
                 timeout: Optional[float] = None,
                 label: Optional[str] = None) -> None:
        self.index = int(index)
        self.task = task
        self.params = dict(params or {})
        self.timeout = timeout
        self.label = label or f"shard-{self.index}"
        try:
            json.dumps(self.params, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"shard {self.index} params are not JSON-safe: {exc}")

    @property
    def seed(self) -> Optional[int]:
        return self.params.get("seed")

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "task": self.task,
            "params": self.params,
            "timeout": self.timeout,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardSpec":
        return cls(index=data["index"], task=data["task"],
                   params=data.get("params"),
                   timeout=data.get("timeout"),
                   label=data.get("label"))

    def __repr__(self) -> str:
        return f"<ShardSpec {self.index} {self.label} task={self.task}>"


class Campaign:
    """An ordered set of independent shards plus campaign identity."""

    def __init__(self, name: str, shards: Sequence[ShardSpec],
                 base_seed: int = 0,
                 metadata: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.shards: List[ShardSpec] = list(shards)
        self.base_seed = base_seed
        self.metadata = dict(metadata or {})
        indices = [spec.index for spec in self.shards]
        if len(set(indices)) != len(indices):
            raise ValueError("shard indices must be unique")

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def seed_sweep(cls, name: str, task: str,
                   params: Optional[Dict[str, Any]] = None,
                   count: Optional[int] = None,
                   seeds: Optional[Iterable[int]] = None,
                   base_seed: int = 0,
                   timeout: Optional[float] = None) -> "Campaign":
        """Same task and params across many seeds.

        Pass explicit ``seeds`` (e.g. from a CLI ``--seeds 0..7``) or a
        ``count``, in which case shard seeds are derived from
        ``base_seed`` via :func:`derive_seed`.
        """
        if seeds is None:
            if count is None:
                raise ValueError("seed_sweep needs seeds= or count=")
            seeds = [derive_seed(base_seed, shard) for shard in range(count)]
        shards = [
            ShardSpec(index, task, dict(params or {}, seed=seed),
                      timeout=timeout, label=f"seed-{seed}")
            for index, seed in enumerate(seeds)
        ]
        return cls(name, shards, base_seed=base_seed,
                   metadata={"kind": "seed_sweep", "task": task})

    @classmethod
    def config_sweep(cls, name: str, task: str,
                     grid: Sequence[Dict[str, Any]],
                     base_seed: int = 0,
                     timeout: Optional[float] = None,
                     labels: Optional[Sequence[str]] = None) -> "Campaign":
        """One shard per parameter dict; each shard that does not pin
        its own ``seed`` gets one derived from ``base_seed``."""
        shards = []
        for index, cell in enumerate(grid):
            params = dict(cell)
            params.setdefault("seed", derive_seed(base_seed, index))
            label = labels[index] if labels else None
            shards.append(ShardSpec(index, task, params,
                                    timeout=timeout, label=label))
        return cls(name, shards, base_seed=base_seed,
                   metadata={"kind": "config_sweep", "task": task})

    # ------------------------------------------------------------------
    def spec_digest(self) -> str:
        """sha256 over the canonical JSON of the whole campaign spec —
        the identity the merge stage stamps on results."""
        blob = json.dumps(
            {
                "name": self.name,
                "base_seed": self.base_seed,
                "shards": [spec.to_dict() for spec in self.shards],
            },
            sort_keys=True,
        ).encode()
        return hashlib.sha256(blob).hexdigest()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "base_seed": self.base_seed,
            "metadata": self.metadata,
            "shards": [spec.to_dict() for spec in self.shards],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Campaign":
        return cls(data["name"],
                   [ShardSpec.from_dict(s) for s in data["shards"]],
                   base_seed=data.get("base_seed", 0),
                   metadata=data.get("metadata"))

    def __repr__(self) -> str:
        return f"<Campaign {self.name!r} shards={len(self.shards)}>"
