"""Worker transports: how shard dispatch reaches execution slots.

The scheduler (:mod:`repro.parallel.pool`) is transport-agnostic: it
talks to :class:`WorkerHandle` objects that carry the same message
vocabulary everywhere —

====================  ================================================
master → worker       ``("run", [spec_dict, ...])`` · ``("stop",)``
worker → master       ``("ready", host_info)`` · ``("start", index)``
                      · ``("done", index, result_dict)`` ·
                      ``("idle", worker_id)``
====================  ================================================

Two transports implement it:

* :class:`LocalTransport` — today's warm spawn-based process pool: a
  fresh ``spawn`` interpreter per worker, a private duplex pipe,
  messages pickled by :mod:`multiprocessing`.
* :class:`SocketTransport` — multi-host dispatch: each worker slot is
  a TCP connection to a ``python -m repro.parallel.worker`` host agent
  (see :mod:`repro.parallel.worker`), messages as **length-prefixed
  JSON frames** (4-byte big-endian length, UTF-8 JSON body).  Because
  shard payloads already survive a JSON round trip (the pool's wire
  contract since PR 3), the frames carry exactly the same data the
  pipe carries — digests are byte-identical across transports.  SSH is
  just a launcher for the agent; the transport only ever sees
  ``host:port`` endpoints.

Both transports expose crash isolation the same way: a worker that
dies makes its handle's :meth:`WorkerHandle.drain` raise
:class:`TransportError` whose message names the death, and the
scheduler fails only the in-flight shard.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import subprocess
import sys
import time
from contextlib import contextmanager
from typing import List, Sequence, Tuple, Union

__all__ = [
    "FrameDecoder",
    "LocalTransport",
    "SocketTransport",
    "Transport",
    "TransportError",
    "WorkerHandle",
    "encode_frame",
    "local_agents",
    "parse_endpoint",
    "start_local_agent",
]

_FRAME_HEADER = struct.Struct(">I")
# Shard specs and result payloads are small JSON documents; anything
# near this bound is a bug (or an attack on an exposed agent port),
# not a campaign.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class TransportError(RuntimeError):
    """A worker endpoint failed: died, unreachable, or spoke garbage."""


# ----------------------------------------------------------------------
# Frame codec (SocketTransport wire format)
# ----------------------------------------------------------------------
def encode_frame(message) -> bytes:
    """``message`` (any JSON-safe tuple/list/dict) → one wire frame."""
    blob = json.dumps(message, separators=(",", ":")).encode()
    if len(blob) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(blob)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound")
    return _FRAME_HEADER.pack(len(blob)) + blob


class FrameDecoder:
    """Incremental decoder: feed byte chunks, get decoded messages."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[list]:
        out = []
        self._buffer += data
        while True:
            if len(self._buffer) < _FRAME_HEADER.size:
                break
            (length,) = _FRAME_HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise TransportError(
                    f"peer announced a {length}-byte frame "
                    f"(bound {MAX_FRAME_BYTES})")
            end = _FRAME_HEADER.size + length
            if len(self._buffer) < end:
                break
            blob = bytes(self._buffer[_FRAME_HEADER.size:end])
            del self._buffer[:end]
            try:
                out.append(json.loads(blob))
            except ValueError as exc:
                raise TransportError(f"undecodable frame: {exc}") from exc
        return out


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``, validated."""
    host, sep, port_text = endpoint.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"endpoint must look like 'host:port', got {endpoint!r}")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(
            f"endpoint {endpoint!r} has a non-numeric port") from exc
    if not 0 < port < 65536:
        raise ValueError(f"endpoint {endpoint!r} port out of range")
    return host, port


# ----------------------------------------------------------------------
# Worker handles
# ----------------------------------------------------------------------
class WorkerHandle:
    """One execution slot, wherever it lives.

    ``waitable`` is an object :func:`multiprocessing.connection.wait`
    accepts (a pipe connection or a socket) so the scheduler can sleep
    on a mixed pool with one call.
    """

    id: int
    host: str        # display name; refined by the worker's ready info
    info: dict       # the worker's ``ready`` host_info (once received)

    def send(self, message: tuple) -> None:
        raise NotImplementedError

    def drain(self) -> List[tuple]:
        """All queued messages, non-blocking.  Raises
        :class:`TransportError` (message contains ``died``) once the
        worker is gone and the queue is empty."""
        raise NotImplementedError

    @property
    def waitable(self):
        raise NotImplementedError

    def alive(self) -> bool:
        raise NotImplementedError

    def kill(self) -> None:
        """Hard-stop the slot (timeout enforcement)."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class LocalWorkerHandle(WorkerHandle):
    """A spawn-started process behind a private duplex pipe."""

    def __init__(self, wid: int, proc, conn) -> None:
        self.id = wid
        self.host = "local"
        self.info = {}
        self.proc = proc
        self.conn = conn

    def send(self, message: tuple) -> None:
        try:
            self.conn.send(tuple(message))
        except (OSError, BrokenPipeError, ValueError) as exc:
            raise TransportError(
                f"worker {self.id} died before accepting its chunk "
                f"({exc})") from exc

    def drain(self) -> List[tuple]:
        out = []
        try:
            while self.conn.poll():
                out.append(tuple(self.conn.recv()))
        except (EOFError, OSError) as exc:
            if out:
                return out  # deliver what arrived; death shows next call
            self.proc.join(timeout=1.0)
            raise TransportError(
                f"worker process died "
                f"(exitcode={self.proc.exitcode})") from exc
        return out

    @property
    def waitable(self):
        return self.conn

    def alive(self) -> bool:
        return self.proc.is_alive()

    def kill(self) -> None:
        try:
            self.proc.kill()
        except OSError:
            pass

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(timeout=5.0)


class SocketWorkerHandle(WorkerHandle):
    """One TCP connection to a host agent = one remote slot."""

    def __init__(self, wid: int, endpoint: str, sock) -> None:
        self.id = wid
        self.host = endpoint
        self.info = {}
        self.sock = sock
        self._decoder = FrameDecoder()
        self._open = True

    def send(self, message: tuple) -> None:
        if not self._open:
            raise TransportError(
                f"worker {self.id} died (connection to {self.host} "
                "already closed)")
        try:
            self.sock.sendall(encode_frame(message))
        except OSError as exc:
            self._open = False
            raise TransportError(
                f"worker {self.id} died before accepting its chunk "
                f"(send to {self.host} failed: {exc})") from exc

    def drain(self) -> List[tuple]:
        import select

        out: List[tuple] = []
        while self._open:
            try:
                readable, _, _ = select.select([self.sock], [], [], 0)
            except OSError:
                self._open = False
                break
            if not readable:
                break
            try:
                data = self.sock.recv(1 << 16)
            except BlockingIOError:
                break
            except OSError:
                self._open = False
                break
            if not data:
                self._open = False
                break
            for message in self._decoder.feed(data):
                out.append(tuple(message))
        if not self._open and not out:
            raise TransportError(
                f"worker died (connection to {self.host} closed)")
        return out

    @property
    def waitable(self):
        return self.sock

    def alive(self) -> bool:
        return self._open

    def kill(self) -> None:
        # Closing the connection makes the agent kill the slot
        # subprocess — remote timeout enforcement without remote state.
        self._open = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def close(self) -> None:
        self.kill()


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------
class Transport:
    """Factory for worker handles; ``kind`` names it in stats."""

    kind = "abstract"

    def launch(self) -> WorkerHandle:
        raise NotImplementedError

    def close(self) -> None:  # release transport-owned resources
        pass

    def describe(self) -> dict:
        return {"kind": self.kind}


class LocalTransport(Transport):
    """The warm spawn-based process pool (the PR-3 behaviour)."""

    kind = "local"

    def __init__(self) -> None:
        self._next_id = 0

    def launch(self) -> LocalWorkerHandle:
        import multiprocessing as mp

        from repro.parallel.worker import pipe_worker_main

        ctx = mp.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(target=pipe_worker_main,
                           args=(child_conn, self._next_id),
                           name=f"gq-shard-worker-{self._next_id}",
                           daemon=True)
        proc.start()
        child_conn.close()  # EOF on parent_conn when the child dies
        handle = LocalWorkerHandle(self._next_id, proc, parent_conn)
        self._next_id += 1
        return handle


class SocketTransport(Transport):
    """TCP connections to one or more host agents, round-robin.

    ``endpoints`` is a list of ``"host:port"`` strings (or one
    comma-separated string).  More workers than endpoints simply opens
    more connections per agent — each connection is its own spawned
    slot on the agent side, so a 16-worker campaign over 4 hosts runs
    4 slots per host.
    """

    kind = "socket"

    def __init__(self, endpoints: Union[str, Sequence[str]],
                 connect_timeout: float = 10.0) -> None:
        if isinstance(endpoints, str):
            endpoints = [part.strip() for part in endpoints.split(",")
                         if part.strip()]
        if not endpoints:
            raise ValueError("SocketTransport needs at least one "
                             "'host:port' endpoint")
        self.endpoints = [
            (endpoint, parse_endpoint(endpoint)) for endpoint in endpoints
        ]
        self.connect_timeout = connect_timeout
        self._next_id = 0
        self._cursor = 0

    def launch(self) -> SocketWorkerHandle:
        errors = []
        for _ in range(len(self.endpoints)):
            endpoint, (host, port) = \
                self.endpoints[self._cursor % len(self.endpoints)]
            self._cursor += 1
            try:
                sock = socket.create_connection(
                    (host, port), timeout=self.connect_timeout)
            except OSError as exc:
                errors.append(f"{endpoint}: {exc}")
                continue
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            handle = SocketWorkerHandle(self._next_id, endpoint, sock)
            self._next_id += 1
            return handle
        raise TransportError(
            "no worker agent reachable: " + "; ".join(errors))

    def describe(self) -> dict:
        return {"kind": self.kind,
                "endpoints": [endpoint for endpoint, _ in self.endpoints]}


# ----------------------------------------------------------------------
# Local agent launching (tests, benches, single-host socket runs)
# ----------------------------------------------------------------------
def start_local_agent(host: str = "127.0.0.1",
                      startup_timeout: float = 30.0):
    """Start a ``python -m repro.parallel.worker`` agent on an
    ephemeral port; return ``(Popen, "host:port")``.

    This is the degenerate launcher — the same agent an SSH launcher
    would start on a remote host, here started locally so tests and
    the benchmark can exercise the socket path hermetically.
    """
    src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    parts = [src_dir] + [p for p in
                         env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.parallel.worker",
         "--host", host, "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, text=True, bufsize=1)
    deadline = time.monotonic() + startup_timeout
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "listening on" in line:
            break
        if proc.poll() is not None:
            raise TransportError(
                f"worker agent exited at startup "
                f"(code {proc.returncode})")
    if "listening on" not in line:
        proc.kill()
        raise TransportError("worker agent never announced its port")
    endpoint = line.rsplit("listening on", 1)[1].strip()
    return proc, endpoint


@contextmanager
def local_agents(count: int = 1, host: str = "127.0.0.1"):
    """Context manager: ``count`` local agents, yielding their
    endpoints; agents are killed on exit."""
    procs = []
    endpoints = []
    try:
        for _ in range(count):
            proc, endpoint = start_local_agent(host=host)
            procs.append(proc)
            endpoints.append(endpoint)
        yield endpoints
    finally:
        for proc in procs:
            proc.kill()
        for proc in procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                pass
