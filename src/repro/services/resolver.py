"""The recursive DNS resolver service (§5.3).

Part of the restricted broadcast domain: inmates receive this
resolver's address via DHCP and use it for all lookups (C&C domains,
victim MX records).  It answers from a local zone when configured and
otherwise recurses to an upstream authoritative server across the
gateway's control-network NAT — so inmate name resolution exercises
the same simulated Internet the malware later connects into.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.net.addresses import IPv4Address
from repro.net.dns import (
    DnsMessage,
    DnsRecord,
    QTYPE_A,
    RCODE_NXDOMAIN,
)
from repro.net.host import Host
from repro.net.packet import IPv4Packet, UDPDatagram

DNS_PORT = 53


class RecursiveResolver:
    """Caching recursive resolver for the inmate network."""

    def __init__(
        self,
        host: Host,
        upstream_ip: Optional[IPv4Address] = None,
        static_zone: Optional[Dict[str, IPv4Address]] = None,
    ) -> None:
        self.host = host
        self.upstream_ip = IPv4Address(upstream_ip) if upstream_ip else None
        self.static_zone = {
            name.lower(): IPv4Address(ip)
            for name, ip in (static_zone or {}).items()
        }
        self.cache: Dict[Tuple[str, int], list] = {}
        self.queries_served = 0
        self.recursions = 0
        self.nxdomains = 0
        self._m_queries = host.sim.telemetry.counter(
            "dns.queries", "DNS queries served, by outcome")
        host.udp.bind(DNS_PORT, self._on_query)

    def add_record(self, name: str, ip: IPv4Address) -> None:
        self.static_zone[name.lower()] = IPv4Address(ip)

    # ------------------------------------------------------------------
    def _on_query(self, host: Host, packet: IPv4Packet,
                  datagram: UDPDatagram) -> None:
        try:
            query = DnsMessage.from_bytes(datagram.payload)
        except ValueError:
            return
        if query.is_response:
            return
        self.queries_served += 1
        name = query.question.name
        qtype = query.question.qtype

        if qtype == QTYPE_A and name in self.static_zone:
            self._m_queries.inc(outcome="static")
            reply = query.reply([DnsRecord.a(name, self.static_zone[name])])
            self._send_reply(reply, packet.src, datagram.sport)
            return

        cached = self.cache.get((name, qtype))
        if cached is not None:
            self._m_queries.inc(outcome="cached")
            self._send_reply(query.reply(cached), packet.src, datagram.sport)
            return

        if self.upstream_ip is None:
            self.nxdomains += 1
            self._m_queries.inc(outcome="nxdomain")
            self._send_reply(query.reply([], rcode=RCODE_NXDOMAIN),
                             packet.src, datagram.sport)
            return
        self._recurse(query, packet.src, datagram.sport)

    def _recurse(self, query: DnsMessage, client_ip: IPv4Address,
                 client_port: int) -> None:
        self.recursions += 1
        self._m_queries.inc(outcome="recursed")
        src_port = self.host.udp.allocate_port()
        name, qtype = query.question.name, query.question.qtype

        def on_upstream(host: Host, packet: IPv4Packet,
                        datagram: UDPDatagram) -> None:
            host.udp.unbind(src_port)
            try:
                response = DnsMessage.from_bytes(datagram.payload)
            except ValueError:
                return
            if response.txid != query.txid:
                return
            if response.rcode == 0 and response.answers:
                self.cache[(name, qtype)] = response.answers
            else:
                self.nxdomains += 1
            reply = query.reply(response.answers, rcode=response.rcode)
            self._send_reply(reply, client_ip, client_port)

        self.host.udp.bind(src_port, on_upstream)
        self.host.udp.sendto(query.to_bytes(), self.upstream_ip, DNS_PORT,
                             src_port)

    def _send_reply(self, reply: DnsMessage, ip: IPv4Address,
                    port: int) -> None:
        self.host.udp.sendto(reply.to_bytes(), ip, port, src_port=DNS_PORT)
