"""Infrastructure services of the inmate network (§5.3, §6.3).

The restricted broadcast domain offers DHCP (answered by the gateway's
packet forwarder) and a recursive DNS resolver; experiment-specific
services include sink servers — from the 100-line catch-all to the
fidelity-adjustable SMTP sink with banner grabbing — and the HTTP
auto-infection service (realized as a REWRITE containment, §6.6).
"""

from repro.services.dhcp import DhcpClient, DhcpMessage
from repro.services.sink import CatchAllSink
from repro.services.smtp_sink import SmtpSink

__all__ = ["DhcpClient", "DhcpMessage", "CatchAllSink", "SmtpSink"]
