"""The catch-all sink server (§6.3).

"Our simplest catch-all server accepts arbitrary input and requires a
mere 100 lines of code."  It accepts any TCP connection on any port
and any UDP datagram, records everything, and never meaningfully
responds — the landing zone for reflected traffic during default-deny
policy development (§3) and the safety net behind spambot policies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.host import Host
from repro.net.packet import IPv4Packet, UDPDatagram
from repro.net.tcp import TcpConnection


class SinkConnectionRecord:
    """One connection (or UDP flow) that hit the sink."""

    __slots__ = ("timestamp", "src_ip", "src_port", "dst_port", "proto",
                 "payload")

    def __init__(self, timestamp: float, src_ip, src_port: int,
                 dst_port: int, proto: str) -> None:
        self.timestamp = timestamp
        self.src_ip = src_ip
        self.src_port = src_port
        self.dst_port = dst_port
        self.proto = proto
        self.payload = bytearray()

    def __repr__(self) -> str:
        return (
            f"<SinkRecord {self.proto} {self.src_ip}:{self.src_port}->"
            f":{self.dst_port} {len(self.payload)}B>"
        )


class CatchAllSink:
    """Accept arbitrary traffic; record it; respond with nothing."""

    def __init__(self, host: Host, udp_ports: Optional[List[int]] = None) -> None:
        self.host = host
        self.records: List[SinkConnectionRecord] = []
        self.connections_accepted = 0
        self.datagrams_received = 0
        tel = host.sim.telemetry
        self._m_connections = tel.counter(
            "sink.connections", "TCP connections the sink accepted").bind()
        self._m_datagrams = tel.counter(
            "sink.datagrams", "UDP datagrams the sink captured").bind()
        host.tcp.listen_any(self._accept)
        for port in udp_ports or []:
            host.udp.bind(port, self._datagram)

    def _accept(self, conn: TcpConnection) -> None:
        self.connections_accepted += 1
        self._m_connections.inc()
        record = SinkConnectionRecord(
            self.host.sim.now, conn.remote_ip, conn.remote_port,
            conn.local_port, "tcp",
        )
        self.records.append(record)
        conn.on_data = lambda c, d: record.payload.extend(d)
        conn.on_remote_close = lambda c: c.close()

    def _datagram(self, host: Host, packet: IPv4Packet,
                  datagram: UDPDatagram) -> None:
        self.datagrams_received += 1
        self._m_datagrams.inc()
        record = SinkConnectionRecord(
            host.sim.now, packet.src, datagram.sport, datagram.dport, "udp",
        )
        record.payload.extend(datagram.payload)
        self.records.append(record)

    # ------------------------------------------------------------------
    # Analysis helpers (what the analyst inspects during §3 iteration)
    # ------------------------------------------------------------------
    def by_destination_port(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for record in self.records:
            counts[record.dst_port] = counts.get(record.dst_port, 0) + 1
        return counts

    def payloads_for_port(self, port: int) -> List[bytes]:
        return [bytes(r.payload) for r in self.records if r.dst_port == port]
