"""The fidelity-adjustable SMTP sink (§6.3, §7.1).

"Our most complex sink constitutes a fidelity-adjustable SMTP server
that can grab greeting banners from the actual target and randomly
drop a configurable fraction of connections."

Fidelity knobs, each tied to a §7.1 lesson:

* ``strictness`` — lenient by default, because a sink that follows the
  SMTP RFC too closely never reaches DATA for real spambots
  ("Protocol violations").
* ``banner_grabbing`` — on first contact with an unseen destination,
  connect out to the *real* mail exchanger, grab its greeting banner,
  and serve that to the spambot ("Satisfying fidelity": Waledac-class
  bots cease activity without the expected banner).
* ``drop_probability`` — randomly refuse a fraction of connections, so
  harvested campaign statistics reflect realistic delivery failure
  (visible in Figure 7: SMTP flows reflected vs. sessions completed).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.addresses import IPv4Address
from repro.net.host import Host
from repro.net.smtp import SmtpServerEngine, SmtpTransaction, Strictness
from repro.net.tcp import TcpConnection

SMTP_PORT = 25


class SmtpSink:
    """SMTP sink accepting (reflected) spambot traffic.

    Parameters
    ----------
    host:
        The service host this sink runs on.
    port:
        Listening port (25 unless an experiment remaps it).
    strictness:
        Protocol rigor of the state machine.
    drop_probability:
        Fraction of connections aborted at accept time.
    banner_grabbing:
        Fetch real banners from the intended destination.  Requires
        ``banner_target_resolver`` to translate the original
        destination address the bot dialled into something routable
        from the service network (identity by default).
    default_banner:
        Served when grabbing is off or has not completed yet.
    """

    def __init__(
        self,
        host: Host,
        port: int = SMTP_PORT,
        strictness: Strictness = Strictness.LENIENT,
        drop_probability: float = 0.0,
        banner_grabbing: bool = False,
        default_banner: str = "sink.gq.example ESMTP ready",
        banner_target_resolver: Optional[
            Callable[[IPv4Address], IPv4Address]
        ] = None,
        listen_any_port: bool = True,
        fault: Optional[dict] = None,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        self.host = host
        self.port = port
        self.strictness = strictness
        self.drop_probability = drop_probability
        self.banner_grabbing = banner_grabbing
        self.default_banner = default_banner
        self.banner_target_resolver = banner_target_resolver or (lambda ip: ip)
        # Scripted fault injection for exploratory containment (§7.1).
        self.fault = fault
        self._rng = host.rng

        self.messages: List[SmtpTransaction] = []
        self.sessions_accepted = 0
        self.sessions_dropped = 0
        self.data_transfers = 0
        self.banner_cache: Dict[IPv4Address, str] = {}
        self.banner_fetches = 0
        # Protocol anomalies (bare-LF line endings, oversized lines)
        # aggregated across all sessions; telemetry cells bind lazily
        # per kind so anomaly-free runs register nothing.
        self.anomalies: Dict[str, int] = {}
        self._anomaly_metric = None
        self._anomaly_cells: Dict[str, object] = {}

        tel = host.sim.telemetry
        sessions = tel.counter(
            "smtp.sessions", "SMTP sink sessions, by fidelity decision")
        self._m_accepted = sessions.bind(decision="accepted")
        self._m_dropped = sessions.bind(decision="dropped")
        self._m_transfers = tel.counter(
            "smtp.data_transfers", "Completed SMTP DATA transactions").bind()
        self._m_banners = tel.counter(
            "smtp.banner_fetches", "Upstream banner grabs started").bind()

        if listen_any_port:
            host.tcp.listen_any(self._accept)
        else:
            host.tcp.listen(port, self._accept)

    # ------------------------------------------------------------------
    def _accept(self, conn: TcpConnection) -> None:
        if self.drop_probability and self._rng.random() < self.drop_probability:
            self.sessions_dropped += 1
            self._m_dropped.inc()
            conn.abort()
            return
        self.sessions_accepted += 1
        self._m_accepted.inc()
        banner = self._banner_for(conn)
        if banner is None:
            # Banner grab in flight: hold the connection, start the
            # engine when the grab resolves.
            self._grab_banner(conn)
            return
        self._start_engine(conn, banner)

    def _banner_for(self, conn: TcpConnection) -> Optional[str]:
        if not self.banner_grabbing:
            return self.default_banner
        # The address the bot originally dialled: with reflection the
        # sink sees itself as destination, so the real target must come
        # through the resolver (wired to the flow's original tuple by
        # the policy) — conn.local_ip is the fallback key.
        key = conn.local_ip
        return self.banner_cache.get(key)

    def _grab_banner(self, conn: TcpConnection) -> None:
        """Connect out to the real destination, grab its 220 greeting."""
        target = self.banner_target_resolver(conn.local_ip)
        self.banner_fetches += 1
        self._m_banners.inc()
        upstream = self.host.tcp.connect(target, SMTP_PORT)
        grabbed = bytearray()

        def on_data(c: TcpConnection, data: bytes) -> None:
            grabbed.extend(data)
            if b"\r\n" in grabbed:
                line = bytes(grabbed).split(b"\r\n", 1)[0].decode("latin-1")
                banner = line[4:] if line[:3].isdigit() else line
                self.banner_cache[conn.local_ip] = banner
                c.close()
                if not conn.fully_closed:
                    self._start_engine(conn, banner)

        def on_fail(c: TcpConnection) -> None:
            self.banner_cache[conn.local_ip] = self.default_banner
            if not conn.fully_closed:
                self._start_engine(conn, self.default_banner)

        upstream.on_data = on_data
        upstream.on_fail = on_fail
        upstream.on_reset = on_fail

    def _note_anomaly(self, kind: str, count: int) -> None:
        self.anomalies[kind] = self.anomalies.get(kind, 0) + count
        cell = self._anomaly_cells.get(kind)
        if cell is None:
            if self._anomaly_metric is None:
                self._anomaly_metric = self.host.sim.telemetry.counter(
                    "smtp.protocol_anomalies",
                    "SMTP dialect anomalies seen by the sink, by kind")
            cell = self._anomaly_metric.bind(kind=kind)
            self._anomaly_cells[kind] = cell
        cell.inc(count)

    def _start_engine(self, conn: TcpConnection, banner: str) -> None:
        engine = SmtpServerEngine(
            send=conn.send,
            banner=banner,
            strictness=self.strictness,
            on_message=self._on_message,
            fault=self.fault,
            on_anomaly=self._note_anomaly,
        )
        conn.app = engine
        conn.on_data = lambda c, d: engine.feed(d)
        conn.on_remote_close = lambda c: c.close()

    def _on_message(self, transaction: SmtpTransaction) -> None:
        transaction.completed_at = self.host.sim.now
        self.data_transfers += 1
        self._m_transfers.inc()
        self.messages.append(transaction)

    # ------------------------------------------------------------------
    # Harvest-side analysis
    # ------------------------------------------------------------------
    def recipients(self) -> List[str]:
        out: List[str] = []
        for message in self.messages:
            out.extend(message.rcpt_to)
        return out

    def campaigns(self) -> Dict[bytes, int]:
        """Distinct message bodies and their frequencies."""
        counts: Dict[bytes, int] = {}
        for message in self.messages:
            counts[message.body] = counts.get(message.body, 0) + 1
        return counts
