"""DHCP: boot-time address assignment for inmates.

The paper's gateway "dynamically assigns internal addresses from
RFC 1918 space, triggered by the inmates' boot-time chatter" (§5.3).
The server side therefore lives in the subfarm router; this module
provides the wire format and the client that inmates run at boot.

The message format is a compact BOOTP-style binary encoding carrying
exactly what the farm needs: transaction id, client MAC, assigned
address, router, DNS resolver, and lease time.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.errors import ParseError
from repro.net.host import BROADCAST_IP, Host
from repro.net.packet import IPv4Packet, UDPDatagram

DHCP_SERVER_PORT = 67
DHCP_CLIENT_PORT = 68

_FORMAT = struct.Struct("!BBI6s4s4s4sI")


class DhcpMessage:
    """A DHCP message (DISCOVER / OFFER / REQUEST / ACK)."""

    DISCOVER = 1
    OFFER = 2
    REQUEST = 3
    ACK = 4

    KIND_NAMES = {1: "DISCOVER", 2: "OFFER", 3: "REQUEST", 4: "ACK"}

    __slots__ = ("kind", "xid", "chaddr", "yiaddr", "router", "dns", "lease")

    def __init__(
        self,
        kind: int,
        xid: int,
        chaddr: MacAddress,
        yiaddr: Optional[IPv4Address] = None,
        router: Optional[IPv4Address] = None,
        dns: Optional[IPv4Address] = None,
        lease: int = 86400,
    ) -> None:
        self.kind = kind
        self.xid = xid
        self.chaddr = chaddr
        self.yiaddr = yiaddr or IPv4Address(0)
        self.router = router or IPv4Address(0)
        self.dns = dns or IPv4Address(0)
        self.lease = lease

    @classmethod
    def discover(cls, xid: int, chaddr: MacAddress) -> "DhcpMessage":
        return cls(cls.DISCOVER, xid, chaddr)

    @classmethod
    def offer(cls, xid: int, chaddr: MacAddress, yiaddr: IPv4Address,
              router: IPv4Address, dns: IPv4Address,
              lease: int = 86400) -> "DhcpMessage":
        return cls(cls.OFFER, xid, chaddr, yiaddr, router, dns, lease)

    @classmethod
    def request(cls, xid: int, chaddr: MacAddress,
                yiaddr: IPv4Address) -> "DhcpMessage":
        return cls(cls.REQUEST, xid, chaddr, yiaddr)

    @classmethod
    def ack(cls, xid: int, chaddr: MacAddress, yiaddr: IPv4Address,
            router: IPv4Address, dns: IPv4Address,
            lease: int = 86400) -> "DhcpMessage":
        return cls(cls.ACK, xid, chaddr, yiaddr, router, dns, lease)

    def to_bytes(self) -> bytes:
        return _FORMAT.pack(
            1, self.kind, self.xid, self.chaddr.to_bytes(),
            self.yiaddr.to_bytes(), self.router.to_bytes(),
            self.dns.to_bytes(), self.lease,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "DhcpMessage":
        if len(data) < _FORMAT.size:
            raise ParseError("dhcp", f"truncated DHCP message "
                             f"({len(data)} of {_FORMAT.size} bytes)",
                             offset=len(data))
        op, kind, xid, chaddr, yiaddr, router, dns, lease = _FORMAT.unpack(
            data[:_FORMAT.size]
        )
        if op != 1 or kind not in cls.KIND_NAMES:
            raise ParseError("dhcp", f"not a farm DHCP message "
                             f"(op={op}, kind={kind})", offset=0)
        return cls(
            kind, xid, MacAddress.from_bytes(chaddr),
            IPv4Address.from_bytes(yiaddr), IPv4Address.from_bytes(router),
            IPv4Address.from_bytes(dns), lease,
        )

    def __repr__(self) -> str:
        return (
            f"<DHCP {self.KIND_NAMES[self.kind]} xid={self.xid} "
            f"yiaddr={self.yiaddr}>"
        )


class DhcpClient:
    """Boot-time DHCP client for inmate hosts.

    Runs the DISCOVER → OFFER → REQUEST → ACK exchange and configures
    the host's interface from the ACK, then calls ``on_configured``.
    This *is* the "boot-time chatter" that triggers the gateway's NAT
    assignment.
    """

    RETRY_INTERVAL = 3.0

    def __init__(self, host: Host,
                 on_configured: Optional[Callable[[Host], None]] = None) -> None:
        self.host = host
        self.on_configured = on_configured
        self.configured = False
        self.attempts = 0
        self._xid = host.rng.randrange(1 << 32)
        self._retry_event = None

    def start(self) -> None:
        self.host.udp.bind(DHCP_CLIENT_PORT, self._on_datagram)
        self._send_discover()

    def _send_discover(self) -> None:
        if self.configured:
            return
        self.attempts += 1
        message = DhcpMessage.discover(self._xid, self.host.mac)
        self.host.udp.sendto(message.to_bytes(), BROADCAST_IP,
                             DHCP_SERVER_PORT, DHCP_CLIENT_PORT)
        self._retry_event = self.host.sim.schedule(
            self.RETRY_INTERVAL, self._send_discover, label="dhcp-retry"
        )

    def _on_datagram(self, host: Host, packet: IPv4Packet,
                     datagram: UDPDatagram) -> None:
        try:
            message = DhcpMessage.from_bytes(datagram.payload)
        except ValueError:
            return
        if message.xid != self._xid or message.chaddr != host.mac:
            return
        if message.kind == DhcpMessage.OFFER:
            request = DhcpMessage.request(self._xid, host.mac, message.yiaddr)
            host.udp.sendto(request.to_bytes(), BROADCAST_IP,
                            DHCP_SERVER_PORT, DHCP_CLIENT_PORT)
        elif message.kind == DhcpMessage.ACK and not self.configured:
            self.configured = True
            if self._retry_event is not None:
                self._retry_event.cancel()
            host.configure(message.yiaddr, gateway_ip=message.router)
            host.dns_server = message.dns  # type: ignore[attr-defined]
            if self.on_configured:
                self.on_configured(host)
