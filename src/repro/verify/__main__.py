"""Operator CLI for the isolation verification plane.

Usage::

    python -m repro.verify certify [--scenario NAME] [--json] [--out P]
    python -m repro.verify check [--scenario NAME] [--json]
    python -m repro.verify quick

``certify`` compiles the golden-seed farm (or a named fault-matrix
scenario farm) into an isolation model, exhaustively explores it, and
prints the certificate — exit 0 when CONTAINED, 1 when LEAKY (the
minimal counterexample prints with the leaking (src-vlan, dst, proto)
path).

``check`` certifies and then cross-validates the certificate against
the same run's runtime evidence: journal coverage plus installed
flow-table coverage.  Exit 0 when both the certificate and the
coverage pass are clean.

``quick`` is the CI gate behind ``make verify-quick``: certify the
golden-seed farm twice plus one fault-matrix scenario, assert both
certificates are CONTAINED and that the two golden runs produced the
same certificate digest (the determinism claim, checked).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.verify.certificate import certify_farm, verify_digest
from repro.verify.runtime import check_farm, render_violations

QUICK_SCENARIO = "cs_crash"


def _build_farm(args):
    """The farm under verification: golden-seed by default, or one
    fault-matrix scenario farm."""
    if getattr(args, "scenario", None):
        from repro.experiments.fault_matrix import build_fault_farm

        return build_fault_farm(seed=args.seed, scenario=args.scenario,
                                duration=args.duration)
    from repro.obs.__main__ import golden_farm

    return golden_farm(seed=args.seed, duration=args.duration)


def _print_certificate(cert: dict, as_json: bool, out: Optional[str]) -> None:
    if as_json or out:
        text = json.dumps(cert, indent=2, sort_keys=True)
        if out:
            with open(out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {out}")
            return
        print(text)
        return
    print(f"isolation certificate [{cert['result']}]")
    print(f"  schema           {cert['schema']}")
    print(f"  model digest     {cert['model_digest']}")
    print(f"  certificate      {cert['digest']}")
    print(f"  exact model      {cert['exact']}")
    print(f"  states explored  {cert['states_explored']}")
    print(f"  transitions      {cert['transitions']}")
    print(f"  world grants     {len(cert['grants'])}")
    for grant in cert["grants"]:
        ports = grant["ports"]
        span = (str(ports[0]) if ports[0] == ports[1]
                else f"{ports[0]}-{ports[1]}")
        print(f"    {grant['subfarm']} vlan={grant['vlan']} "
              f"{grant['direction']} dst={grant['dst']} "
              f"{grant['proto']}:{span} content={grant['content']} "
              f"-> {grant['verdict']} ({grant['grant_kind']})")
    print(f"  leak paths       {cert['leak_count']}")
    counterexample = cert.get("counterexample")
    if counterexample:
        path = counterexample["path"]
        print(f"  counterexample   {counterexample['kind']}: "
              f"subfarm={path['subfarm']} src_vlan={path['src_vlan']} "
              f"dst={path['dst']} proto={path['proto']} "
              f"ports={path['ports'][0]}-{path['ports'][1]}")
        for step in counterexample["trace"]:
            detail = ", ".join(f"{k}={v}" for k, v in step.items()
                               if k != "step")
            print(f"    -> {step['step']}  {detail}")


def _cmd_certify(args) -> int:
    farm = _build_farm(args)
    cert = certify_farm(farm, label=args.label)
    _print_certificate(cert, args.json, args.out)
    return 0 if cert["result"] == "CONTAINED" else 1


def _cmd_check(args) -> int:
    farm = _build_farm(args)
    cert = certify_farm(farm, label=args.label)
    journal = farm.journal_snapshot()
    report = check_farm(cert, farm)
    if args.json:
        print(json.dumps({"certificate": cert,
                          "coverage": report.to_dict()},
                         indent=2, sort_keys=True))
    else:
        _print_certificate(cert, False, None)
        print(render_violations(report, journal))
    clean = cert["result"] == "CONTAINED" and report.ok
    return 0 if clean else 1


def _cmd_quick(args) -> int:
    """CI gate: digest stability + scenario containment."""
    from repro.obs.__main__ import golden_farm

    failures: List[str] = []
    print("verify-quick: certifying golden-seed farm (run 1/2) ...")
    cert_a = certify_farm(golden_farm(), label="golden")
    print("verify-quick: certifying golden-seed farm (run 2/2) ...")
    cert_b = certify_farm(golden_farm(), label="golden")
    print(f"  run1 {cert_a['result']} digest={cert_a['digest'][:16]}… "
          f"states={cert_a['states_explored']}")
    print(f"  run2 {cert_b['result']} digest={cert_b['digest'][:16]}…")
    if cert_a["result"] != "CONTAINED":
        failures.append("golden-seed farm certificate is LEAKY")
    if cert_a["digest"] != cert_b["digest"]:
        failures.append("certificate digest unstable across runs")
    if not (verify_digest(cert_a) and verify_digest(cert_b)):
        failures.append("certificate self-digest does not verify")

    print(f"verify-quick: certifying fault scenario "
          f"{QUICK_SCENARIO!r} ...")
    from repro.experiments.fault_matrix import build_fault_farm

    farm = build_fault_farm(seed=args.seed, scenario=QUICK_SCENARIO)
    cert_c = certify_farm(farm, label=QUICK_SCENARIO)
    print(f"  {QUICK_SCENARIO} {cert_c['result']} "
          f"digest={cert_c['digest'][:16]}… "
          f"grants={len(cert_c['grants'])}")
    if cert_c["result"] != "CONTAINED":
        failures.append(f"scenario {QUICK_SCENARIO} certificate is LEAKY")
    report = check_farm(cert_c, farm)
    print(f"  coverage {report.covered}/{report.checked} covered, "
          f"{len(report.violations)} violation(s)")
    if not report.ok:
        failures.append("runtime coverage violations in "
                        f"{QUICK_SCENARIO}")
        print(render_violations(report, farm.journal_snapshot()))

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("verify-quick: OK")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="machine-checked containment certificates")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p) -> None:
        p.add_argument("--seed", type=int, default=11)
        p.add_argument("--duration", type=float, default=120.0)
        p.add_argument("--scenario",
                       help="certify a fault-matrix scenario farm "
                            "instead of the golden-seed farm")
        p.add_argument("--label", default="",
                       help="label recorded inside the certificate")
        p.add_argument("--json", action="store_true",
                       help="print the raw certificate JSON")

    p_certify = sub.add_parser(
        "certify", help="compile, explore, and print a certificate")
    common(p_certify)
    p_certify.add_argument("--out", metavar="PATH",
                           help="write the certificate JSON to a file")
    p_certify.set_defaults(func=_cmd_certify)

    p_check = sub.add_parser(
        "check", help="certify + cross-validate against runtime evidence")
    common(p_check)
    p_check.set_defaults(func=_cmd_check)

    p_quick = sub.add_parser(
        "quick", help="CI gate: digest stability + scenario containment")
    p_quick.add_argument("--seed", type=int, default=11)
    p_quick.set_defaults(func=_cmd_quick)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
