"""Isolation certificates: signed-by-digest proof artifacts.

A certificate (schema ``gq.verify/1``) is the JSON record of one
exhaustive exploration: the model digest that pins *what* was
verified, the explored state count that pins *how much*, the grant
table that pins *which* inmate→world paths exist, and either zero
leak paths or a minimal counterexample trace.  ``digest`` is the
sha256 of the certificate's canonical JSON (sorted keys, compact
separators) with the digest field itself excluded — so two runs that
explored the same model and found the same surface produce
byte-identical certificates, which ``make verify-quick`` asserts.

Campaign certificates (schema ``gq.verify.campaign/1``) merge
per-shard certificates deterministically: shards sort by label, the
grant table is the deduplicated union, and the merged digest covers
the shard digests — so a serial and a parallel run of the same
campaign merge to the same campaign certificate (digest parity, the
same property :mod:`repro.parallel.merge` holds for results).
"""

from __future__ import annotations

import hashlib
import json
from typing import List, Optional

from repro.verify.explore import ExplorationResult, explore
from repro.verify.model import IsolationModel

__all__ = [
    "SCHEMA",
    "CAMPAIGN_SCHEMA",
    "build_certificate",
    "canonical_digest",
    "certify_farm",
    "merge_certificates",
    "verify_digest",
]

SCHEMA = "gq.verify/1"
CAMPAIGN_SCHEMA = "gq.verify.campaign/1"

#: Leak traces kept verbatim inside a certificate; beyond this only
#: the count and the minimal counterexample survive (certificates ride
#: inside shard payloads — they must stay small).
_MAX_LEAKS = 16


def canonical_digest(payload: dict) -> str:
    """sha256 over canonical JSON, ignoring any ``digest`` field."""
    scrubbed = {key: value for key, value in payload.items()
                if key != "digest"}
    blob = json.dumps(scrubbed, sort_keys=True,
                      separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


def build_certificate(model: IsolationModel, result: ExplorationResult,
                      label: str = "", allow=None) -> dict:
    """Assemble and self-sign one certificate."""
    leaks = [
        {key: value for key, value in leak.items()}
        for leak in result.leaks[:_MAX_LEAKS]
    ]
    certificate = {
        "schema": SCHEMA,
        "label": label,
        "model_digest": model.digest(),
        "exact": model.exact,
        "seed": model.seed,
        "states_explored": result.states_explored,
        "transitions": result.transitions,
        "grants": result.grants,
        "leak_count": len(result.leaks),
        "leaks": leaks,
        "counterexample": result.counterexample,
        "allow": allow,
        "result": "CONTAINED" if not result.leaks else "LEAKY",
    }
    certificate["digest"] = canonical_digest(certificate)
    return certificate


def certify_farm(farm, plan=None, label: str = "", allow=None) -> dict:
    """Compile + explore + sign in one call (the common path)."""
    from repro.verify.model import compile_farm

    model = compile_farm(farm, plan=plan)
    result = explore(model, allow=allow)
    return build_certificate(model, result, label=label, allow=allow)


def verify_digest(certificate: dict) -> bool:
    """Re-derive the digest; False means the certificate was edited."""
    recorded = certificate.get("digest")
    return (isinstance(recorded, str)
            and canonical_digest(certificate) == recorded)


def merge_certificates(certificates: List[dict],
                       label: str = "campaign") -> Optional[dict]:
    """Deterministically merge per-shard certificates.

    Order-independent: shards sort by ``(label, digest)``, grants
    dedup on their canonical JSON, and the merged digest covers the
    shard digest list — identical shard certificates in any arrival
    order produce an identical campaign certificate.
    """
    certs = [cert for cert in certificates if cert]
    if not certs:
        return None
    certs = sorted(certs, key=lambda c: (c.get("label", ""),
                                         c.get("digest", "")))
    seen = set()
    grants = []
    counterexample = None
    leak_count = 0
    for cert in certs:
        leak_count += cert.get("leak_count", 0)
        if counterexample is None and cert.get("counterexample"):
            counterexample = cert["counterexample"]
        for entry in cert.get("grants", []):
            key = json.dumps(entry, sort_keys=True)
            if key not in seen:
                seen.add(key)
                grants.append(entry)
    grants.sort(key=lambda g: json.dumps(g, sort_keys=True))
    merged = {
        "schema": CAMPAIGN_SCHEMA,
        "label": label,
        "shards": [
            {"label": cert.get("label", ""),
             "digest": cert.get("digest", ""),
             "model_digest": cert.get("model_digest", ""),
             "result": cert.get("result", "")}
            for cert in certs
        ],
        "states_explored": sum(c.get("states_explored", 0) for c in certs),
        "grants": grants,
        "leak_count": leak_count,
        "counterexample": counterexample,
        "exact": all(c.get("exact", False) for c in certs),
        "result": ("CONTAINED"
                   if all(c.get("result") == "CONTAINED" for c in certs)
                   else "LEAKY"),
    }
    merged["digest"] = canonical_digest(merged)
    return merged
