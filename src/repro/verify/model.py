"""Compile the containment decision surface into a finite model.

The verifier's object of study is everything that can turn an inmate
packet into an upstream packet: the per-VLAN containment policy, the
safety filter, the failover pending policy, and the fault-plan
windows during which the pending policy — not the containment policy
— answers flows.  This module flattens all of it into pure data:

* an **abstract flow** is ``(src VLAN range, dst class, proto, port
  atom, content class)`` — dst class is ``world`` (an address outside
  the farm) or ``farm`` (a service or another inmate), and a port
  atom is one interval of the partition of ``[0, 65535]`` induced by
  the policy's rule boundaries;
* a :class:`PolicyModel` is the policy's complete decision surface
  over abstract flows — computed **symbolically** for
  :class:`~repro.core.dsl.DslPolicy` (rules are data; the model is
  exact) and for the registry built-ins with closed-form behaviour,
  or by **concolic probing** for opaque general-Python policies
  (probe ports + the probe content corpus; the model is marked
  ``exact=False`` and the certificate inherits the flag);
* a :class:`SubfarmModel` adds the subfarm's pending policy, its
  verdict-outage overlay windows from the fault plan
  (:meth:`~repro.faults.plan.FaultPlan.verdict_outage_windows`), and
  the safety filter's rate envelope;
* an :class:`IsolationModel` is the farm: a list of subfarm models
  plus a canonical digest that pins certificate identity.

The known abstraction gaps (model vs runtime) are catalogued in
docs/VERIFICATION.md.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dsl import DslPolicy
from repro.core.policy import (
    AllowAll,
    ContainmentPolicy,
    DefaultDeny,
    PolicyContext,
    ReflectAll,
)
from repro.faults.plan import FaultPlan
from repro.net.addresses import IPv4Address
from repro.net.flow import FiveTuple
from repro.net.packet import PROTO_TCP, PROTO_UDP

__all__ = [
    "DIRECTIONS",
    "IsolationModel",
    "Outcome",
    "PolicyModel",
    "SubfarmModel",
    "compile_farm",
    "compile_policy",
]

DIRECTIONS = ("outbound", "inbound")
PROTO_NAMES = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}

#: Probe points for opaque policies: the analysis corpus ports plus a
#: representative for "every other port".
_PROBE_OTHER_PORT = 49999

#: Addresses used when concolically probing an opaque policy.  The
#: inmate side is internal; the destination is a textbook TEST-NET
#: address, standing in for "the world".
_PROBE_INMATE_IP = "10.1.0.23"
_PROBE_WORLD_IP = "198.51.100.77"


class Outcome:
    """One cell of a policy's decision surface."""

    __slots__ = ("direction", "proto", "port_lo", "port_hi", "content",
                 "verdict", "target", "target_class", "rate", "exact")

    def __init__(self, direction: str, proto: int, port_lo: int,
                 port_hi: int, content: str, verdict: str,
                 target: Optional[str] = None,
                 target_class: Optional[str] = None,
                 rate: Optional[float] = None, exact: bool = True) -> None:
        self.direction = direction
        self.proto = proto
        self.port_lo = port_lo
        self.port_hi = port_hi
        self.content = content
        self.verdict = verdict
        self.target = target
        self.target_class = target_class
        self.rate = rate
        self.exact = exact

    def to_dict(self) -> dict:
        out = {
            "direction": self.direction,
            "proto": PROTO_NAMES[self.proto],
            "ports": [self.port_lo, self.port_hi],
            "content": self.content,
            "verdict": self.verdict,
            "exact": self.exact,
        }
        if self.target is not None:
            out["target"] = self.target
        if self.target_class is not None:
            out["target_class"] = self.target_class
        if self.rate is not None:
            out["rate"] = self.rate
        return out

    def __repr__(self) -> str:
        return (f"<Outcome {self.direction} "
                f"{PROTO_NAMES[self.proto]}:{self.port_lo}-{self.port_hi} "
                f"content={self.content} -> {self.verdict}>")


class PolicyModel:
    """A policy's complete decision surface over abstract flows."""

    __slots__ = ("description", "outcomes", "exact")

    def __init__(self, description: dict, outcomes: List[Outcome],
                 exact: bool) -> None:
        self.description = description
        self.outcomes = outcomes
        self.exact = exact

    def cells(self, direction: str, proto: int) -> List[Outcome]:
        return [cell for cell in self.outcomes
                if cell.direction == direction and cell.proto == proto]

    def to_dict(self) -> dict:
        return {
            "policy": self.description,
            "exact": self.exact,
            "outcomes": [cell.to_dict() for cell in self.outcomes],
        }


# ----------------------------------------------------------------------
# Policy compilation
# ----------------------------------------------------------------------
def _target_class(ip: Optional[IPv4Address]) -> Optional[str]:
    if ip is None:
        return None
    return "farm" if ip.is_rfc1918() else "world"


def _dsl_action_outcome(action, services: Dict[str, tuple]) -> dict:
    """Verdict/target fields for one parsed DSL action clause."""
    kind = action.kind
    if kind == "forward":
        return {"verdict": "FORWARD"}
    if kind == "drop":
        return {"verdict": "DROP"}
    if kind == "rewrite":
        return {"verdict": "REWRITE"}
    if kind == "limit":
        return {"verdict": "LIMIT", "rate": action.rate}
    if kind == "reflect":
        service = services.get(action.service or "sink")
        ip = service[0] if service else None
        return {"verdict": "REFLECT",
                "target": str(ip) if ip is not None else None,
                "target_class": _target_class(ip) or "farm"}
    if kind == "redirect":
        return {"verdict": "REDIRECT", "target": str(action.target_ip),
                "target_class": _target_class(action.target_ip)}
    raise ValueError(f"unhandled DSL action kind {kind!r}")


def _dsl_atoms(rules, direction: str, proto: int) -> List[Tuple[int, int]]:
    """Partition [0, 65535] on the applicable rules' port boundaries."""
    bounds = {0, 65536}
    for rule in rules:
        lo, hi = rule.port_interval()
        bounds.add(lo)
        bounds.add(hi + 1)
    edges = sorted(bound for bound in bounds if 0 <= bound <= 65536)
    return [(lo, nxt - 1) for lo, nxt in zip(edges, edges[1:])]


def _content_tag(rule) -> str:
    if rule.content_prefix is not None:
        return f"prefix:{rule.content_prefix.decode('latin-1')!r}"
    return f"regex:{rule.content_regex.pattern.decode('latin-1')!r}"


def compile_dsl_policy(policy: DslPolicy) -> PolicyModel:
    """Exact symbolic evaluation of a DSL program.

    Mirrors ``DslPolicy.decide``/``decide_content`` first-match
    semantics: within one port atom, each applicable content rule
    ahead of the first applicable endpoint-only rule contributes a
    branch for "content matches this pattern"; the endpoint-only rule
    (or the default) decides every other content.
    """
    outcomes: List[Outcome] = []
    for direction in DIRECTIONS:
        for proto in (PROTO_TCP, PROTO_UDP):
            applicable = [
                rule for rule in policy.rules
                if rule.direction in (None, direction)
                and rule.proto in (None, proto)
            ]
            for lo, hi in _dsl_atoms(applicable, direction, proto):
                in_atom = [
                    rule for rule in applicable
                    if rule.port_interval()[0] <= lo
                    and hi <= rule.port_interval()[1]
                ]
                branched = False
                decided = False
                for rule in in_atom:
                    fields = _dsl_action_outcome(rule.action,
                                                 policy.services)
                    if rule.needs_content:
                        outcomes.append(Outcome(
                            direction, proto, lo, hi,
                            content=_content_tag(rule), **fields))
                        branched = True
                    else:
                        outcomes.append(Outcome(
                            direction, proto, lo, hi,
                            content="other" if branched else "*",
                            **fields))
                        decided = True
                        break
                if not decided:
                    fields = _dsl_action_outcome(policy.default_action,
                                                 policy.services)
                    outcomes.append(Outcome(
                        direction, proto, lo, hi,
                        content="other" if branched else "*", **fields))
    return PolicyModel(policy.describe(), outcomes, exact=True)


def _closed_form(policy: ContainmentPolicy) -> Optional[str]:
    """Verdict for registry built-ins with whole-surface behaviour."""
    if type(policy) is AllowAll:
        return "FORWARD"
    if type(policy) is DefaultDeny or type(policy) is ContainmentPolicy:
        return "DROP"
    return None


def _probe_decision(policy: ContainmentPolicy, direction: str, proto: int,
                    port: int, content: Dict[str, bytes]) -> List[tuple]:
    """Concolic probe of one (direction, proto, port) point; returns
    ``(content_tag, decision)`` pairs."""
    outbound = direction == "outbound"
    if outbound:
        flow = FiveTuple(IPv4Address(_PROBE_INMATE_IP), 51000,
                         IPv4Address(_PROBE_WORLD_IP), port, proto)
    else:
        flow = FiveTuple(IPv4Address(_PROBE_WORLD_IP), 51000,
                         IPv4Address(_PROBE_INMATE_IP), port, proto)
    ctx = PolicyContext(flow, vlan_id=101, nonce_port=40000, now=0.0,
                        services=dict(policy.services),
                        inmate_is_originator=outbound)
    pairs = []
    decision = policy.decide(ctx)
    if decision is not None:
        pairs.append(("*", decision))
        return pairs
    for tag, payload in content.items():
        if not payload:
            continue
        settled = policy.decide_content(ctx, payload)
        if settled is not None:
            pairs.append((tag, settled))
    return pairs


def probe_policy(policy: ContainmentPolicy) -> PolicyModel:
    """Concolic model of an opaque policy: probe the analysis corpus
    ports (plus one representative for every other port) with the
    probe content corpus.  ``exact=False`` — the certificate carries
    the caveat."""
    from repro.analysis.policy_testing import DEFAULT_CONTENT, DEFAULT_PORTS

    outcomes: List[Outcome] = []
    ports = list(DEFAULT_PORTS)
    for direction in DIRECTIONS:
        for proto in (PROTO_TCP, PROTO_UDP):
            for port in ports + [_PROBE_OTHER_PORT]:
                atom = ((port, port) if port != _PROBE_OTHER_PORT
                        else (0, 65535))
                for tag, decision in _probe_decision(
                        policy, direction, proto, port, DEFAULT_CONTENT):
                    outcomes.append(Outcome(
                        direction, proto, atom[0], atom[1], content=tag,
                        verdict=decision.verdict.label,
                        target=(str(decision.target_ip)
                                if decision.target_ip is not None else None),
                        target_class=_target_class(decision.target_ip),
                        rate=decision.rate, exact=False))
    return PolicyModel(policy.describe(), outcomes, exact=False)


def compile_policy(policy: ContainmentPolicy) -> PolicyModel:
    """Route a policy to its most precise available model."""
    if isinstance(policy, DslPolicy):
        return compile_dsl_policy(policy)
    verdict = _closed_form(policy)
    if verdict is not None:
        outcomes = [
            Outcome(direction, proto, 0, 65535, "*", verdict)
            for direction in DIRECTIONS
            for proto in (PROTO_TCP, PROTO_UDP)
        ]
        return PolicyModel(policy.describe(), outcomes, exact=True)
    if type(policy) is ReflectAll:
        service = policy.services.get(policy.sink_service)
        ip = service[0] if service else None
        outcomes = [
            Outcome(direction, proto, 0, 65535, "*", "REFLECT",
                    target=str(ip) if ip is not None else None,
                    target_class=_target_class(ip) or "farm")
            for direction in DIRECTIONS
            for proto in (PROTO_TCP, PROTO_UDP)
        ]
        return PolicyModel(policy.describe(), outcomes, exact=True)
    return probe_policy(policy)


# ----------------------------------------------------------------------
# Subfarm / farm compilation
# ----------------------------------------------------------------------
class SubfarmModel:
    """One subfarm's decision surface plus its failure overlays."""

    __slots__ = ("name", "assignments", "pending_policy", "overlays",
                 "safety", "server_count", "malice_policy")

    def __init__(self, name: str,
                 assignments: List[Tuple[Optional[int], Optional[int],
                                         PolicyModel]],
                 pending_policy: Optional[str],
                 overlays: List[dict], safety: Optional[dict],
                 server_count: int, malice_policy: str = "isolate") -> None:
        self.name = name
        self.assignments = assignments
        self.pending_policy = pending_policy
        self.overlays = overlays
        self.safety = safety
        self.server_count = server_count
        self.malice_policy = malice_policy

    @property
    def exact(self) -> bool:
        return all(model.exact for _, _, model in self.assignments)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "assignments": [
                {"vlans": ("*" if lo is None else [lo, hi]),
                 **model.to_dict()}
                for lo, hi, model in self.assignments
            ],
            "pending_policy": self.pending_policy,
            "overlays": self.overlays,
            "safety": self.safety,
            "server_count": self.server_count,
            "malice_policy": self.malice_policy,
        }


class IsolationModel:
    """The farm-level transition model the explorer walks."""

    SCHEMA = "gq.verify.model/1"

    __slots__ = ("subfarms", "seed")

    def __init__(self, subfarms: List[SubfarmModel],
                 seed: Optional[int] = None) -> None:
        self.subfarms = subfarms
        self.seed = seed

    @property
    def exact(self) -> bool:
        return all(subfarm.exact for subfarm in self.subfarms)

    def describe(self) -> dict:
        return {
            "schema": self.SCHEMA,
            "seed": self.seed,
            "exact": self.exact,
            "subfarms": [subfarm.to_dict() for subfarm in self.subfarms],
        }

    def digest(self) -> str:
        blob = json.dumps(self.describe(), sort_keys=True,
                          separators=(",", ":")).encode()
        return hashlib.sha256(blob).hexdigest()


def compile_subfarm(subfarm, plan: FaultPlan) -> SubfarmModel:
    """Compile one live :class:`~repro.farm.Subfarm`."""
    assignments: List[tuple] = []
    for (lo, hi), policy in sorted(subfarm.policy_map.policies().items()):
        assignments.append((lo, hi, compile_policy(policy)))
    assignments.append((None, None,
                        compile_policy(subfarm.policy_map.default)))

    resilience = subfarm.resilience
    pending = (resilience.config.pending_policy
               if resilience is not None else None)
    server_count = max(1, len(subfarm._cs_servers))
    overlays = (plan.verdict_outage_windows(subfarm.name, server_count)
                if resilience is not None else [])
    return SubfarmModel(
        subfarm.name, assignments, pending, overlays,
        subfarm.safety.bounds(), server_count,
        malice_policy=subfarm.farm.config.malice_policy)


def compile_farm(farm, plan=None) -> IsolationModel:
    """Compile a live farm (and optionally an explicit fault plan —
    defaults to the farm's configured one) into an isolation model."""
    if plan is None:
        plan = getattr(farm.config, "fault_plan", None)
    plan = FaultPlan.coerce(plan)
    subfarms = [compile_subfarm(farm.subfarms[name], plan)
                for name in sorted(farm.subfarms)]
    return IsolationModel(subfarms, seed=farm.config.seed)
