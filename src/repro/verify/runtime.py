"""Runtime cross-validation: static proof vs what actually happened.

A certificate is only as good as its model, so this second pass
checks the *runtime* evidence against the certified grant table:

* every world-reaching ``verdict.applied`` journal event (FORWARD /
  LIMIT / REWRITE on a flow whose recorded destination lies outside
  the farm) must be covered by a certificate grant — journal events
  carry (vlan, proto, verdict) but no port, so journal coverage is
  checked at that granularity (a documented abstraction gap;
  docs/VERIFICATION.md);
* every ``failover.pending`` event that resolved FORWARD must be
  covered the same way (via the pending-policy overlay);
* every installed upstream-emitting FlowTable entry
  (:meth:`~repro.gateway.flowtable.FlowTable.world_grants`) must be
  covered at full port precision — compiled rules carry their ports.

Violations come back as structured dicts; for journal violations the
flow's full causal chain renders via :mod:`repro.obs.provenance`, so
an uncovered flow explains itself the same way ``python -m repro.obs
why`` does.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.addresses import IPv4Address

__all__ = [
    "CoverageReport",
    "GrantIndex",
    "check_farm",
    "check_journal",
    "render_violations",
]

_WORLD_OPS = frozenset({"FORWARD", "LIMIT", "REWRITE"})


def _vlan_covered(spec: str, vlan: Optional[int]) -> bool:
    if spec == "*" or vlan is None:
        return True
    if "-" in spec:
        lo, hi = spec.split("-", 1)
        return int(lo) <= vlan <= int(hi)
    return int(spec) == vlan


class GrantIndex:
    """Coverage lookups over a certificate's grant table (farm or
    campaign certificate — both carry ``grants``)."""

    def __init__(self, certificate: dict) -> None:
        self.certificate = certificate
        self.grants: List[dict] = list(certificate.get("grants", []))

    def cover(self, vlan: Optional[int], proto: str, verdict: str,
              port: Optional[int] = None,
              subfarm: Optional[str] = None) -> Optional[dict]:
        """The first grant covering the observation, or None.

        ``port=None`` (journal events don't record one) matches any
        port range; a concrete port must fall inside the grant's
        atom.  The verdict matches when the observed endpoint ops are
        a subset of the granted ones.
        """
        observed = set(verdict.split("|")) & _WORLD_OPS
        for grant in self.grants:
            if subfarm is not None and grant["subfarm"] != subfarm:
                continue
            if grant["proto"] != proto:
                continue
            if not _vlan_covered(grant["vlan"], vlan):
                continue
            if port is not None:
                lo, hi = grant["ports"]
                if not lo <= port <= hi:
                    continue
            granted = set(grant["verdict"].split("|"))
            if grant.get("via") == "pending":
                granted |= {"FORWARD"}
            if not observed <= (granted | {"REWRITE"}
                                if "REWRITE" in granted else granted):
                continue
            return grant
        return None


class CoverageReport:
    """Outcome of one runtime cross-validation pass."""

    __slots__ = ("checked", "covered", "violations")

    def __init__(self) -> None:
        self.checked = 0
        self.covered = 0
        self.violations: List[dict] = []

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "checked": self.checked,
            "covered": self.covered,
            "violations": self.violations,
        }


def _is_world(destination: Optional[str]) -> bool:
    if not destination:
        return False
    try:
        return not IPv4Address(destination).is_rfc1918()
    except (ValueError, TypeError):
        return False


def check_journal(certificate: dict, journal_snapshot: dict,
                  report: Optional[CoverageReport] = None
                  ) -> CoverageReport:
    """Certificate coverage of a journal snapshot (live, dumped, or a
    shard-merged campaign journal)."""
    index = GrantIndex(certificate)
    report = report or CoverageReport()
    events = journal_snapshot.get("events", [])
    destinations: Dict[str, str] = {}
    protos: Dict[str, str] = {}
    for event in events:
        if event.get("kind") != "flow.created":
            continue
        flow = event.get("flow")
        fields = event.get("fields", {})
        if flow:
            destinations[flow] = fields.get("destination", "")
            protos[flow] = fields.get("proto", "tcp")

    for event in events:
        kind = event.get("kind")
        fields = event.get("fields", {})
        verdict = fields.get("verdict", "")
        if kind == "verdict.applied":
            proto = fields.get("proto", "tcp")
        elif kind == "failover.pending":
            proto = protos.get(event.get("flow"), "tcp")
        else:
            continue
        if not set(verdict.split("|")) & _WORLD_OPS:
            continue
        flow = event.get("flow")
        destination = destinations.get(flow)
        if not _is_world(destination):
            continue  # farm-internal flow: nothing reached the world
        report.checked += 1
        grant = index.cover(event.get("vlan"), proto, verdict)
        if grant is not None:
            report.covered += 1
            continue
        report.violations.append({
            "source": "journal",
            "seq": event.get("seq"),
            "flow": flow,
            "vlan": event.get("vlan"),
            "proto": proto,
            "verdict": verdict,
            "destination": destination,
            "reason": f"{kind} event not covered by any certificate "
                      "grant",
        })
    return report


def check_flowtables(certificate: dict, farm,
                     report: Optional[CoverageReport] = None
                     ) -> CoverageReport:
    """Certificate coverage of every installed upstream-emitting flow
    table entry, at full port precision."""
    index = GrantIndex(certificate)
    report = report or CoverageReport()
    for name in sorted(farm.subfarms):
        table = farm.subfarms[name].router.flowtable
        for entry in table.world_grants():
            report.checked += 1
            grant = index.cover(entry["vlan"], _proto_name(entry["proto"]),
                                entry["verdict"], port=entry["dport"],
                                subfarm=name)
            if grant is not None:
                report.covered += 1
                continue
            report.violations.append({
                "source": "flowtable",
                "subfarm": name,
                "vlan": entry["vlan"],
                "proto": _proto_name(entry["proto"]),
                "dport": entry["dport"],
                "dst": entry["dst"],
                "verdict": entry["verdict"],
                "reason": "installed upstream-emitting entry not covered "
                          "by any certificate grant",
            })
    return report


def _proto_name(proto) -> str:
    if proto in ("tcp", "udp"):
        return proto
    from repro.net.packet import PROTO_TCP

    return "tcp" if proto == PROTO_TCP else "udp"


def check_farm(certificate: dict, farm) -> CoverageReport:
    """The full runtime pass over a live farm: journal coverage plus
    compiled flow-table coverage."""
    report = CoverageReport()
    check_journal(certificate, farm.journal_snapshot(), report)
    check_flowtables(certificate, farm, report)
    return report


def render_violations(report: CoverageReport,
                      journal_snapshot: Optional[dict] = None) -> str:
    """Human-readable violation listing; journal-sourced violations
    include the flow's causal provenance chain when the journal is at
    hand."""
    if report.ok:
        return (f"coverage ok: {report.covered}/{report.checked} "
                "world-reaching observations covered")
    from repro.obs.provenance import chain_for, render_chain

    events = (journal_snapshot or {}).get("events", [])
    lines = [f"{len(report.violations)} coverage violation(s):"]
    for violation in report.violations:
        summary = ", ".join(
            f"{key}={violation[key]}" for key in
            ("source", "subfarm", "vlan", "proto", "dport", "verdict",
             "destination", "dst")
            if violation.get(key) is not None)
        lines.append(f"- {summary}")
        lines.append(f"  {violation['reason']}")
        flow = violation.get("flow")
        if flow and events:
            chain = chain_for(events, flow)
            if chain:
                lines.append(render_chain(chain, indent="    "))
    return "\n".join(lines)
