"""Exhaustive reachability over an isolation model.

The state space is small by construction — abstract flows are VLAN
*ranges* × two destination classes × two protocols × the port-atom
partition × content classes — so plain BFS enumerates every state a
flow can reach from creation to its terminal classification:

    flow.created ── safety ──> admitted | refused
    admitted ── verdict phase ──> normal | outage(window)
    normal ── policy cell ──> granted | contained | LEAK
    outage ── pending policy (× handshake state) ──> ...

Terminal classification (the paper's containment claim, made
checkable): a path reaches the world only through

* an explicit ``FORWARD``/``LIMIT`` policy grant (the grant table),
* a ``REWRITE`` grant (content-controlled: the containment server
  stays in the path — granted, flagged ``content-controlled``),

and anything else world-reaching is a **leak**:

* ``redirect-to-world`` — a REDIRECT whose target address lives
  outside the farm (the flow reaches the world at a destination the
  certificate's grant table never mentions);
* ``pending-forward`` — a fail-open pending policy resolving flows
  during a verdict outage window (UDP and handshake-complete TCP
  only; un-handshaken TCP cannot fail open — see
  :func:`repro.gateway.failover.fail_open_possible`);
* ``unexpected-grant`` — an explicit FORWARD/LIMIT outside the
  operator's allow-spec, when one was provided.

Every leak carries its full transition trace; the minimal
counterexample is the shortest trace (ties broken on
(subfarm, vlan, proto, port)) and names the leaking
(src-vlan, dst, proto) path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.gateway.failover import fail_open_possible
from repro.net.packet import PROTO_TCP
from repro.verify.model import DIRECTIONS, IsolationModel, PROTO_NAMES

__all__ = ["ExplorationResult", "explore"]

_WORLD_OPS = ("FORWARD", "LIMIT")


class ExplorationResult:
    """Everything the certificate needs from one exploration."""

    __slots__ = ("states_explored", "transitions", "grants", "leaks",
                 "counterexample")

    def __init__(self, states_explored: int, transitions: int,
                 grants: List[dict], leaks: List[dict],
                 counterexample: Optional[dict]) -> None:
        self.states_explored = states_explored
        self.transitions = transitions
        self.grants = grants
        self.leaks = leaks
        self.counterexample = counterexample


def _vlan_text(lo: Optional[int], hi: Optional[int]) -> str:
    if lo is None:
        return "*"
    return str(lo) if lo == hi else f"{lo}-{hi}"


def _allow_covers(allow: Optional[List[dict]], proto_name: str,
                  port_lo: int, port_hi: int, verdict: str) -> bool:
    """Does the operator's allow-spec cover this world grant?  ``allow``
    entries are ``{"proto", "port_lo", "port_hi", "verdicts"}`` with
    every field optional (missing = any)."""
    if allow is None:
        return True
    ops = set(verdict.split("|"))
    for entry in allow:
        if entry.get("proto") not in (None, proto_name):
            continue
        lo = entry.get("port_lo", 0)
        hi = entry.get("port_hi", 65535)
        if not (lo <= port_lo and port_hi <= hi):
            continue
        allowed = entry.get("verdicts")
        if allowed is not None and not (ops & set(allowed)):
            continue
        return True
    return False


def explore(model: IsolationModel,
            allow: Optional[List[dict]] = None) -> ExplorationResult:
    """BFS every abstract flow of ``model`` to a terminal state."""
    states: set = set()
    transitions = 0
    grants: Dict[tuple, dict] = {}
    leaks: List[dict] = []

    def visit(state: tuple) -> None:
        states.add(state)

    def leak(kind: str, base: dict, trace: List[dict],
             step: dict) -> None:
        leaks.append(dict(base, kind=kind, trace=trace + [step]))

    def grant(kind: str, base: dict, via: str) -> None:
        key = (base["subfarm"], base["vlan"], base["direction"],
               base["dst"], base["proto"], tuple(base["ports"]),
               base["content"], base["verdict"], via, kind)
        if key not in grants:
            grants[key] = dict(base, via=via, grant_kind=kind)

    for subfarm in model.subfarms:
        for vlan_lo, vlan_hi, policy_model in subfarm.assignments:
            vlan = _vlan_text(vlan_lo, vlan_hi)
            for direction in DIRECTIONS:
                for proto, proto_name in sorted(PROTO_NAMES.items()):
                    cells = policy_model.cells(direction, proto)
                    for cell in cells:
                        for dst in ("world", "farm"):
                            base = {
                                "subfarm": subfarm.name,
                                "vlan": vlan,
                                "direction": direction,
                                "dst": dst,
                                "proto": proto_name,
                                "ports": [cell.port_lo, cell.port_hi],
                                "content": cell.content,
                                "verdict": cell.verdict,
                                "policy": policy_model.description.get(
                                    "policy"),
                                "exact": cell.exact,
                            }
                            trace = [{
                                "step": "flow.created",
                                "subfarm": subfarm.name,
                                "src_vlan": vlan, "dst": dst,
                                "direction": direction,
                                "proto": proto_name,
                                "ports": [cell.port_lo, cell.port_hi],
                            }]
                            root = (subfarm.name, vlan, direction, dst,
                                    proto, cell.port_lo, cell.port_hi,
                                    cell.content)
                            visit(root + ("new",))
                            # Safety filter: both admission edges exist.
                            transitions += 2
                            visit(root + ("refused",))  # terminal, contained
                            visit(root + ("admitted",))
                            trace = trace + [{"step": "safety.admit",
                                              "bounds": subfarm.safety}]
                            # --- normal phase: the policy decides ----
                            transitions += 1
                            visit(root + ("verdict", "normal"))
                            step = {
                                "step": "verdict.applied",
                                "phase": "normal",
                                "policy": base["policy"],
                                "verdict": cell.verdict,
                                "content": cell.content,
                            }
                            ops = set(cell.verdict.split("|"))
                            world_reaching = (
                                dst == "world" or direction == "inbound")
                            if ops & set(_WORLD_OPS):
                                if world_reaching:
                                    emit = {"step": "emit.upstream",
                                            "dst": dst}
                                    if not _allow_covers(
                                            allow, proto_name,
                                            cell.port_lo, cell.port_hi,
                                            cell.verdict):
                                        leak("unexpected-grant", base,
                                             trace + [step], emit)
                                    else:
                                        grant(
                                            "inbound-response"
                                            if direction == "inbound"
                                            and dst != "world"
                                            else "explicit",
                                            base, via="policy")
                                visit(root + ("terminal", "granted"))
                            elif "REWRITE" in ops:
                                if world_reaching:
                                    grant("content-controlled", base,
                                          via="policy")
                                visit(root + ("terminal", "rewritten"))
                            elif "REDIRECT" in ops:
                                if cell.target_class == "world":
                                    leak("redirect-to-world",
                                         dict(base, target=cell.target),
                                         trace + [step],
                                         {"step": "emit.upstream",
                                          "target": cell.target})
                                visit(root + ("terminal", "redirected"))
                            else:  # DROP / REFLECT stay in the farm
                                visit(root + ("terminal", "contained"))
                    # --- outage overlays: pending policy decides -----
                    for index, window in enumerate(subfarm.overlays):
                        for dst in ("world", "farm"):
                            base = {
                                "subfarm": subfarm.name,
                                "vlan": vlan,
                                "direction": direction,
                                "dst": dst,
                                "proto": proto_name,
                                "ports": [0, 65535],
                                "content": "*",
                                "verdict": "FORWARD",
                                "policy": "fail-open",
                                "exact": True,
                            }
                            handshakes = (("new", "established")
                                          if proto == PROTO_TCP
                                          else ("datagram",))
                            for handshake in handshakes:
                                transitions += 1
                                state = (subfarm.name, vlan,
                                         direction, dst, proto,
                                         "outage", index, handshake)
                                visit(state)
                                if subfarm.pending_policy != "forward":
                                    visit(state + ("contained",))
                                    continue
                                can_open = fail_open_possible(
                                    proto,
                                    handshake != "new")
                                if not can_open or dst != "world":
                                    visit(state + ("contained",))
                                    continue
                                trace = [
                                    {"step": "flow.created",
                                     "subfarm": subfarm.name,
                                     "src_vlan": vlan, "dst": dst,
                                     "direction": direction,
                                     "proto": proto_name,
                                     "ports": [0, 65535]},
                                    {"step": "fault.window",
                                     "kind": window.get("kind"),
                                     "start": window.get("start"),
                                     "end": window.get("end")},
                                    {"step": "failover.pending",
                                     "pending_policy": "forward",
                                     "handshake": handshake,
                                     "verdict": "FORWARD"},
                                ]
                                leak("pending-forward",
                                     dict(base, handshake=handshake,
                                          window=dict(window)),
                                     trace,
                                     {"step": "emit.upstream",
                                      "dst": dst})
                                visit(state + ("leaked",))

    ordered_grants = sorted(
        grants.values(),
        key=lambda g: (g["subfarm"], g["vlan"], g["direction"], g["dst"],
                       g["proto"], g["ports"][0], g["ports"][1],
                       g["content"], g["verdict"]))
    counterexample = None
    if leaks:
        best = min(
            leaks,
            key=lambda l: (len(l["trace"]), l["subfarm"], l["vlan"],
                           l["proto"], l["ports"][0]))
        counterexample = {
            "kind": best["kind"],
            "path": {
                "subfarm": best["subfarm"],
                "src_vlan": best["vlan"],
                "dst": best.get("target") or best["dst"],
                "proto": best["proto"],
                "ports": best["ports"],
            },
            "trace": best["trace"],
        }
    return ExplorationResult(len(states), transitions, ordered_grants,
                             leaks, counterexample)
