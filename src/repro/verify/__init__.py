"""Isolation verification plane: machine-checked containment certificates.

The GQ paper's containment claim — inmates can only reach the world
through paths the operator deliberately granted — is enforced at
runtime by the gateway, but until now it was *checked* only by ad-hoc
leak greps over flow logs.  This package turns the claim into a proof
obligation:

1. :mod:`repro.verify.model` compiles the entire containment decision
   surface (per-VLAN policies, safety filter, failover pending policy,
   fault-plan outage windows) into a finite transition model over
   abstract flows;
2. :mod:`repro.verify.explore` exhaustively walks every abstract flow
   to a terminal state, collecting the world-grant table and any leak
   paths with full transition traces;
3. :mod:`repro.verify.certificate` signs the result into a canonical
   JSON certificate (digest-stable across runs; per-shard certificates
   merge deterministically into a campaign certificate);
4. :mod:`repro.verify.runtime` cross-validates the static proof
   against runtime evidence — every world-reaching journal verdict and
   every installed upstream flow-table entry must be covered by a
   certificate grant.

CLI: ``python -m repro.verify certify`` / ``check`` / ``--quick``.
Semantics, schema, and known abstraction gaps: docs/VERIFICATION.md.
"""

from repro.verify.certificate import (
    CAMPAIGN_SCHEMA,
    SCHEMA,
    build_certificate,
    canonical_digest,
    certify_farm,
    merge_certificates,
    verify_digest,
)
from repro.verify.explore import ExplorationResult, explore
from repro.verify.model import (
    IsolationModel,
    Outcome,
    PolicyModel,
    SubfarmModel,
    compile_farm,
    compile_policy,
)
from repro.verify.runtime import (
    CoverageReport,
    GrantIndex,
    check_farm,
    check_flowtables,
    check_journal,
    render_violations,
)

__all__ = [
    "CAMPAIGN_SCHEMA",
    "SCHEMA",
    "CoverageReport",
    "ExplorationResult",
    "GrantIndex",
    "IsolationModel",
    "Outcome",
    "PolicyModel",
    "SubfarmModel",
    "build_certificate",
    "canonical_digest",
    "certify_farm",
    "check_farm",
    "check_flowtables",
    "check_journal",
    "compile_farm",
    "compile_policy",
    "explore",
    "merge_certificates",
    "render_violations",
    "verify_digest",
]
