"""Victim mail exchangers in the external universe.

Real MXes matter to the reproduction in two ways:

* They carry distinctive greeting banners, which banner-checking
  spambots (Waledac-class) demand and GQ's banner-grabbing SMTP sink
  fetches from here (§7.1 "Satisfying fidelity").
* Providers fingerprint bot dialects.  :class:`FingerprintingMx`
  models the GMail behaviour of §7.1: recognize a suspicious HELO
  string and report the sender's address to the blocking list.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.net.host import Host
from repro.net.smtp import SmtpServerEngine, SmtpTransaction, Strictness
from repro.net.tcp import TcpConnection
from repro.world.blacklist import BlockingList

SMTP_PORT = 25


class MailExchanger:
    """A victim MX: accepts mail, counts deliveries.

    Optionally wired to a blocking list with a volume threshold — the
    CBL pipeline in its most common form: a source that delivers more
    than ``volume_threshold`` messages gets reported as a spammer.
    """

    def __init__(self, host: Host, banner: str,
                 strictness: Strictness = Strictness.LENIENT,
                 blocklist: Optional[BlockingList] = None,
                 volume_threshold: int = 25) -> None:
        self.host = host
        self.banner = banner
        self.strictness = strictness
        self.blocklist = blocklist
        self.volume_threshold = volume_threshold
        self.delivered: List[SmtpTransaction] = []
        self.sessions = 0
        self._volume_by_source: dict = {}
        host.tcp.listen(SMTP_PORT, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        self.sessions += 1
        engine = SmtpServerEngine(
            send=conn.send,
            banner=self.banner,
            strictness=self.strictness,
            on_message=lambda t: self._on_message(t, conn.remote_ip),
        )
        conn.app = engine
        conn.on_data = lambda c, d: self._feed(engine, c, d)
        conn.on_remote_close = lambda c: c.close()

    def _feed(self, engine: SmtpServerEngine, conn: TcpConnection,
              data: bytes) -> None:
        engine.feed(data)
        if engine.quit_received and not conn.fully_closed:
            conn.close()

    def _on_message(self, transaction: SmtpTransaction,
                    source=None) -> None:
        transaction.completed_at = self.host.sim.now
        self.delivered.append(transaction)
        if self.blocklist is not None and source is not None:
            volume = self._volume_by_source.get(source, 0) + 1
            self._volume_by_source[source] = volume
            if volume == self.volume_threshold:
                self.blocklist.report(
                    source, self.host.sim.now,
                    f"spam volume over {self.volume_threshold} at "
                    f"{self.banner.split()[0]}",
                )


class FingerprintingMx(MailExchanger):
    """An MX that detects known-bot HELO strings and tells the list.

    The GMail model of §7.1: Waledac's ``wergvan`` HELO was recognized
    and the sending addresses were passed to blacklist providers.
    """

    def __init__(
        self,
        host: Host,
        banner: str,
        blocklist: BlockingList,
        suspicious_helos: Optional[Iterable[str]] = None,
    ) -> None:
        super().__init__(host, banner)
        self.blocklist = blocklist
        self.suspicious_helos: Set[str] = {
            h.lower() for h in (suspicious_helos or ["wergvan"])
        }
        self.detections = 0

    def _accept(self, conn: TcpConnection) -> None:
        self.sessions += 1
        remote = conn.remote_ip
        engine = SmtpServerEngine(
            send=conn.send,
            banner=self.banner,
            strictness=self.strictness,
            on_message=lambda t: self._on_message(t, remote),
        )
        conn.app = engine

        def feed(c: TcpConnection, data: bytes) -> None:
            engine.feed(data)
            if engine.helo.lower() in self.suspicious_helos:
                self.detections += 1
                self.blocklist.report(
                    remote, self.host.sim.now,
                    f"recognized HELO {engine.helo!r}",
                )
            if engine.quit_received and not c.fully_closed:
                c.close()

        conn.on_data = feed
        conn.on_remote_close = lambda c: c.close()
