"""External FTP sites — targets of the Storm iframe-injection jobs.

§7.1 "Unexpected visitors": an upstream botmaster used Storm proxy
bots' SOCKS capability to log into FTP servers with known credentials
and re-upload pages with malicious iframes.  These are those servers:
small websites whose stolen credentials circulate in the underground.
"""

from __future__ import annotations

from typing import Dict

from repro.net.ftp import FtpServerEngine
from repro.net.host import Host
from repro.net.tcp import TcpConnection

FTP_PORT = 21


class FtpSite:
    """An external FTP server with an in-memory site and accounts."""

    def __init__(self, host: Host, accounts: Dict[str, str],
                 files: Dict[str, bytes],
                 banner: str = "ProFTPD 1.3 Server ready") -> None:
        self.host = host
        self.accounts = dict(accounts)
        self.files = dict(files)
        self.banner = banner
        self.sessions = 0
        self.engines = []
        host.tcp.listen(FTP_PORT, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        self.sessions += 1
        engine = FtpServerEngine(
            send=conn.send,
            accounts=self.accounts,
            files=self.files,  # shared dict: uploads are visible site-wide
            banner=self.banner,
        )
        self.engines.append(engine)
        conn.app = engine
        conn.on_data = lambda c, d: engine.feed(d)
        conn.on_remote_close = lambda c: c.close()

    @property
    def defaced(self) -> bool:
        """Has any page been modified to carry an iframe?"""
        return any(b"<iframe" in content for content in self.files.values())

    def uploads(self):
        out = []
        for engine in self.engines:
            out.extend(engine.uploads)
        return out
