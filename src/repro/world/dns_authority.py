"""The authoritative DNS server of the simulated Internet.

One flat authority serving A and MX records for every zone in the
external universe — C&C domains, victim domains, their mail
exchangers.  Subfarm resolvers recurse to it through the gateway's
control-network NAT, so inmate lookups traverse the real (simulated)
path.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.net.addresses import IPv4Address
from repro.net.dns import (
    DnsMessage,
    DnsRecord,
    QTYPE_A,
    QTYPE_MX,
    RCODE_NXDOMAIN,
)
from repro.net.host import Host
from repro.net.packet import IPv4Packet, UDPDatagram

DNS_PORT = 53


class AuthoritativeDns:
    """Flat authoritative server for the whole external universe."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self._a: Dict[str, IPv4Address] = {}
        self._mx: Dict[str, List[Tuple[int, str]]] = {}
        self.queries_answered = 0
        self.nxdomains = 0
        host.udp.bind(DNS_PORT, self._on_query)

    def add_a(self, name: str, address: IPv4Address) -> None:
        self._a[name.lower()] = IPv4Address(address)

    def add_mx(self, domain: str, exchange: str, priority: int = 10) -> None:
        self._mx.setdefault(domain.lower(), []).append((priority, exchange))

    def lookup_a(self, name: str):
        return self._a.get(name.lower())

    # ------------------------------------------------------------------
    def _on_query(self, host: Host, packet: IPv4Packet,
                  datagram: UDPDatagram) -> None:
        try:
            query = DnsMessage.from_bytes(datagram.payload)
        except ValueError:
            return
        if query.is_response:
            return
        name = query.question.name
        answers: List[DnsRecord] = []
        if query.question.qtype == QTYPE_A and name in self._a:
            answers.append(DnsRecord.a(name, self._a[name]))
        elif query.question.qtype == QTYPE_MX and name in self._mx:
            for priority, exchange in sorted(self._mx[name]):
                answers.append(DnsRecord.mx(name, exchange, priority))
        if answers:
            self.queries_answered += 1
            reply = query.reply(answers)
        else:
            self.nxdomains += 1
            reply = query.reply([], rcode=RCODE_NXDOMAIN)
        host.udp.sendto(reply.to_bytes(), packet.src, datagram.sport,
                        src_port=DNS_PORT)
