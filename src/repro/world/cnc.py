"""Botnet command-and-control servers.

Each family speaks a recognizably different C&C dialect — the
property GQ's whole methodology leans on: "in practice the majority
of specimens we encounter still possesses readily distinguishable C&C
protocols" (§8).  Policies whitelist these shapes narrowly; the
fingerprint classifier of §7.1 tells families apart by them.

Dialects (documented here, implemented by the servers and by the
specimen models in :mod:`repro.malware.spambots`):

* Rustock — campaign fetch over "https" (TCP 443, HTTP framing in this
  simulation) ``GET /mod/cmd?id=<bot>``; periodic status beacons over
  plain HTTP ``GET /stat?r=<counter>`` (the flows Figure 7 shows being
  REWRITE-filtered).
* Grum — ``GET /grum/spm?id=<bot>`` on port 80.
* Waledac — ``POST /waledac/ctrl`` with an XML-ish body on port 80.
* MegaD — proprietary binary protocol on TCP 4443: ``MEGAD\\x01``
  magic + bot id, answered by ``MEGAD\\x02`` + payload.
* Clickbot — ``GET /click/tasks?aff=<id>`` on port 80.

Command payloads are JSON spam-campaign instructions: recipient list,
message body, and pacing.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from repro.net.host import Host
from repro.net.http import HttpParser, HttpRequest, HttpResponse
from repro.net.tcp import TcpConnection

MEGAD_PORT = 4443
MEGAD_MAGIC_REQ = b"MEGAD\x01"
MEGAD_MAGIC_RSP = b"MEGAD\x02"


class CampaignSource:
    """Generates spam-campaign instructions for C&C responses."""

    def __init__(self, name: str, targets: List[str], body: bytes,
                 batch_size: int = 20, send_interval: float = 2.0) -> None:
        self.name = name
        self.targets = list(targets)
        self.body = body
        self.batch_size = batch_size
        self.send_interval = send_interval
        self._cursor = 0
        self.batches_issued = 0

    def next_batch(self) -> dict:
        if not self.targets:
            batch: List[str] = []
        else:
            batch = [
                self.targets[(self._cursor + i) % len(self.targets)]
                for i in range(self.batch_size)
            ]
            self._cursor = (self._cursor + self.batch_size) % len(self.targets)
        self.batches_issued += 1
        return {
            "campaign": self.name,
            "targets": batch,
            "body": self.body.decode("latin-1"),
            "interval": self.send_interval,
        }


class HttpCncServer:
    """HTTP-framed C&C endpoint serving campaign instructions."""

    def __init__(
        self,
        host: Host,
        campaign: CampaignSource,
        port: int = 80,
        path_prefix: str = "/",
        extra_routes: Optional[Dict[str, Callable[[HttpRequest], HttpResponse]]] = None,
    ) -> None:
        self.host = host
        self.campaign = campaign
        self.port = port
        self.path_prefix = path_prefix
        self.extra_routes = dict(extra_routes or {})
        self.requests_served: List[HttpRequest] = []
        self.unknown_paths = 0
        host.tcp.listen(port, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        parser = HttpParser("request")

        def on_data(c: TcpConnection, data: bytes) -> None:
            for request in parser.feed(data):
                self.requests_served.append(request)
                c.send(self._respond(request).to_bytes())

        conn.on_data = on_data
        conn.on_remote_close = lambda c: c.close()

    def _respond(self, request: HttpRequest) -> HttpResponse:
        path = request.path.split("?", 1)[0]
        for prefix, handler in self.extra_routes.items():
            if path.startswith(prefix):
                return handler(request)
        if path.startswith(self.path_prefix):
            payload = json.dumps(self.campaign.next_batch()).encode("ascii")
            return HttpResponse(200, body=payload)
        self.unknown_paths += 1
        return HttpResponse(404)


class MegadCncServer:
    """MegaD's proprietary binary C&C (§7.1 "Exploratory containment":
    GQ confirmed the extracted protocol engine against live servers)."""

    def __init__(self, host: Host, campaign: CampaignSource,
                 port: int = MEGAD_PORT) -> None:
        self.host = host
        self.campaign = campaign
        self.port = port
        self.requests_served = 0
        self.bad_magic = 0
        host.tcp.listen(port, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        buffer = bytearray()

        def on_data(c: TcpConnection, data: bytes) -> None:
            buffer.extend(data)
            if len(buffer) < len(MEGAD_MAGIC_REQ) + 2:
                return
            if not bytes(buffer).startswith(MEGAD_MAGIC_REQ):
                self.bad_magic += 1
                c.abort()
                return
            self.requests_served += 1
            payload = json.dumps(self.campaign.next_batch()).encode("ascii")
            frame = (MEGAD_MAGIC_RSP
                     + len(payload).to_bytes(4, "big") + payload)
            c.send(frame)
            buffer.clear()

        conn.on_data = on_data
        conn.on_remote_close = lambda c: c.close()


def parse_megad_response(data: bytes) -> Optional[dict]:
    """Client-side MegaD frame parser; None while incomplete."""
    if len(data) < len(MEGAD_MAGIC_RSP) + 4:
        return None
    if not data.startswith(MEGAD_MAGIC_RSP):
        raise ValueError("not a MegaD response frame")
    length = int.from_bytes(data[6:10], "big")
    if len(data) < 10 + length:
        return None
    return json.loads(data[10:10 + length].decode("ascii"))
