"""Assembles the external universe around a Farm.

:class:`ExternalWorld` populates the simulated Internet: authoritative
DNS, a directory of victim domains with mail exchangers (including a
GMail-like fingerprinting MX), family C&C servers, and FTP sites.  It
owns the address plan for external space (TEST-NET-3 and TEST-NET-2
ranges) so experiments never collide with the farm's own networks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.farm import Farm
from repro.net.addresses import IPv4Address
from repro.world.blacklist import BlockingList
from repro.world.cnc import (
    CampaignSource,
    HttpCncServer,
    MegadCncServer,
    MEGAD_PORT,
)
from repro.world.dns_authority import AuthoritativeDns
from repro.world.ftp_sites import FtpSite
from repro.world.mail import FingerprintingMx, MailExchanger

AUTHORITATIVE_DNS_IP = "203.0.113.53"


class VictimDomain:
    """One victim domain: an MX host plus mailboxes."""

    __slots__ = ("domain", "mx_name", "mx", "mailboxes")

    def __init__(self, domain: str, mx_name: str, mx: MailExchanger,
                 mailboxes: List[str]) -> None:
        self.domain = domain
        self.mx_name = mx_name
        self.mx = mx
        self.mailboxes = mailboxes


class ExternalWorld:
    """The outside Internet, reactive and measurable."""

    def __init__(self, farm: Farm, seed_label: str = "world") -> None:
        self.farm = farm
        self.rng = farm.sim.rng(seed_label)
        self._next_host_octet = {"203.0.113.0": 100, "198.51.100.0": 10}

        dns_host = farm.add_external_host("authoritative-dns",
                                          AUTHORITATIVE_DNS_IP)
        self.dns = AuthoritativeDns(dns_host)
        farm.authoritative_dns_ip = dns_host.ip
        # Resolvers created before the world existed pick it up too.
        for subfarm in farm.subfarms.values():
            subfarm.resolver.upstream_ip = dns_host.ip

        self.blocklist = BlockingList("CBL")
        self.victim_domains: List[VictimDomain] = []
        self.cnc_servers: Dict[str, object] = {}
        self.ftp_sites: Dict[str, FtpSite] = {}

    # ------------------------------------------------------------------
    def allocate_ip(self, network: str = "203.0.113.0") -> IPv4Address:
        octet = self._next_host_octet[network]
        self._next_host_octet[network] = octet + 1
        if octet > 254:
            raise RuntimeError(f"external network {network} exhausted")
        base = network.rsplit(".", 1)[0]
        return IPv4Address(f"{base}.{octet}")

    # ------------------------------------------------------------------
    # Victim mail infrastructure
    # ------------------------------------------------------------------
    def add_victim_domain(
        self,
        domain: str,
        mailbox_count: int = 50,
        banner: Optional[str] = None,
        fingerprinting: bool = False,
        suspicious_helos: Optional[List[str]] = None,
    ) -> VictimDomain:
        ip = self.allocate_ip()
        mx_name = f"mx1.{domain}"
        host = self.farm.add_external_host(mx_name, str(ip))
        banner = banner or f"{mx_name} ESMTP Postfix (Debian/GNU)"
        if fingerprinting:
            mx: MailExchanger = FingerprintingMx(
                host, banner, self.blocklist,
                suspicious_helos=suspicious_helos,
            )
            mx.blocklist = self.blocklist  # volume reporting too
        else:
            mx = MailExchanger(host, banner, blocklist=self.blocklist)
        mailboxes = [f"user{i}@{domain}" for i in range(mailbox_count)]
        victim = VictimDomain(domain, mx_name, mx, mailboxes)
        self.victim_domains.append(victim)
        self.dns.add_a(mx_name, ip)
        self.dns.add_a(domain, ip)
        self.dns.add_mx(domain, mx_name)
        return victim

    def add_standard_victims(self, domains: int = 4,
                             mailboxes_per_domain: int = 50) -> None:
        """A default victim population plus the GMail-like provider."""
        for i in range(domains):
            self.add_victim_domain(f"victim{i}.example",
                                   mailbox_count=mailboxes_per_domain)
        self.add_victim_domain(
            "gmail.example",
            mailbox_count=mailboxes_per_domain,
            banner="mx.google.example ESMTP s7si12 - gsmtp",
            fingerprinting=True,
        )

    def victim_directory(self) -> List[str]:
        """All known mailboxes — raw material for spam campaigns."""
        out: List[str] = []
        for victim in self.victim_domains:
            out.extend(victim.mailboxes)
        return out

    def mx_for_domain(self, domain: str) -> Optional[VictimDomain]:
        for victim in self.victim_domains:
            if victim.domain == domain:
                return victim
        return None

    def total_spam_delivered(self) -> int:
        return sum(len(v.mx.delivered) for v in self.victim_domains)

    # ------------------------------------------------------------------
    # C&C servers
    # ------------------------------------------------------------------
    def add_http_cnc(
        self,
        family: str,
        domain: str,
        campaign: Optional[CampaignSource] = None,
        port: int = 80,
        path_prefix: str = "/",
        extra_routes=None,
        on_host=None,
    ) -> HttpCncServer:
        """Stand up an HTTP C&C endpoint.  Pass ``on_host`` to add a
        second listener (e.g. Rustock's port-80 beacon endpoint) to an
        existing C&C host instead of creating a new one."""
        if on_host is None:
            ip = self.allocate_ip("198.51.100.0")
            host = self.farm.add_external_host(f"cnc-{family}", str(ip))
            self.dns.add_a(domain, ip)
        else:
            host = on_host
        campaign = campaign or self.default_campaign(family)
        server = HttpCncServer(host, campaign, port=port,
                               path_prefix=path_prefix,
                               extra_routes=extra_routes)
        self.cnc_servers[family] = server
        return server

    def add_megad_cnc(self, domain: str = "megad-ctrl.example",
                      campaign: Optional[CampaignSource] = None
                      ) -> MegadCncServer:
        ip = self.allocate_ip("198.51.100.0")
        host = self.farm.add_external_host("cnc-megad", str(ip))
        campaign = campaign or self.default_campaign("megad")
        server = MegadCncServer(host, campaign, port=MEGAD_PORT)
        self.cnc_servers["megad"] = server
        self.dns.add_a(domain, ip)
        return server

    def default_campaign(self, family: str,
                         batch_size: int = 20,
                         send_interval: float = 2.0) -> CampaignSource:
        return CampaignSource(
            name=f"{family}-pharma",
            targets=self.victim_directory(),
            body=(f"Subject: cheap meds from {family}\r\n\r\n"
                  f"Buy now at http://pills.example/{family}").encode("ascii"),
            batch_size=batch_size,
            send_interval=send_interval,
        )

    # ------------------------------------------------------------------
    # Websites and clickbot infrastructure
    # ------------------------------------------------------------------
    def add_publisher(self, domain: str, port: int = 80):
        """A publisher website whose hit counter measures click fraud."""
        from repro.world.websites import PublisherSite

        ip = self.allocate_ip()
        host = self.farm.add_external_host(f"web-{domain}", str(ip))
        site = PublisherSite(host, port=port)
        self.dns.add_a(domain, ip)
        return site

    def add_click_cnc(self, domain: str, tasks, interval: float = 5.0):
        """The clickbot task server."""
        from repro.world.websites import ClickCncServer

        ip = self.allocate_ip("198.51.100.0")
        host = self.farm.add_external_host("cnc-clickbot", str(ip))
        server = ClickCncServer(host, tasks, interval=interval)
        self.cnc_servers["clickbot"] = server
        self.dns.add_a(domain, ip)
        return server

    # ------------------------------------------------------------------
    # FTP sites (Storm iframe-injection targets)
    # ------------------------------------------------------------------
    def add_ftp_site(self, domain: str, username: str,
                     password: str) -> FtpSite:
        ip = self.allocate_ip()
        host = self.farm.add_external_host(f"ftp-{domain}", str(ip))
        page = (b"<html><head><title>" + domain.encode() +
                b"</title></head><body>welcome</body></html>")
        site = FtpSite(host, {username: password}, {"index.html": page})
        self.ftp_sites[domain] = site
        self.dns.add_a(domain, ip)
        return site

    def __repr__(self) -> str:
        return (
            f"<ExternalWorld victims={len(self.victim_domains)} "
            f"cnc={list(self.cnc_servers)}>"
        )
