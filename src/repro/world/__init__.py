"""The simulated external universe.

Everything GQ's inmates talk to across the upstream interface lives
here: an authoritative DNS server, botnet C&C servers, victim mail
exchangers, FTP servers, and the anti-spam blacklist infrastructure
(a Composite Blocking List model).  The paper's operational lessons
depend on the outside world *reacting* to inmate traffic — most
prominently the Waledac episode, where Google's MX recognized the
bots' HELO string and fed the blacklist — so these services are
active participants, not static fixtures.
"""

from repro.world.blacklist import BlockingList
from repro.world.builder import ExternalWorld

__all__ = ["ExternalWorld", "BlockingList"]
