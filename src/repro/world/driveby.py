"""Drive-by download sites — the honeycrawler's prey.

§4 requires the farm to host inmates "acting exclusively as servers
(realizing traditional honeyfarms) or clients (realizing
honeycrawlers)", and §6.6 notes GQ "equally supports traditional
honeypot constellations in which dynamic circumstances (such as a web
drive-by) determine the nature of the infection."

A :class:`DrivebySite` serves an innocuous page that pulls in an
exploit script; vulnerable visitors fetch the payload and get
infected.  Benign sites serve plain pages and are the control group.
"""

from __future__ import annotations

from repro.malware.corpus import Sample
from repro.net.host import Host
from repro.net.http import HttpParser, HttpRequest, HttpResponse
from repro.net.tcp import TcpConnection

EXPLOIT_MARKER = b'<script src="/exploit.js"></script>'


class DrivebySite:
    """A compromised website serving a drive-by download."""

    def __init__(self, host: Host, payload: Sample,
                 port: int = 80) -> None:
        self.host = host
        self.payload = payload
        self.page_hits = 0
        self.exploit_hits = 0
        self.payload_downloads = 0
        host.tcp.listen(port, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        parser = HttpParser("request")

        def on_data(c: TcpConnection, data: bytes) -> None:
            for request in parser.feed(data):
                c.send(self._respond(request).to_bytes())

        conn.on_data = on_data
        conn.on_remote_close = lambda c: c.close()

    def _respond(self, request: HttpRequest) -> HttpResponse:
        path = request.path.split("?", 1)[0]
        if path == "/exploit.js":
            self.exploit_hits += 1
            return HttpResponse(
                200, {"Content-Type": "text/javascript"},
                body=b"window.pwn=function(){fetch('/payload.exe')};pwn();",
            )
        if path == "/payload.exe":
            self.payload_downloads += 1
            return HttpResponse(
                200, {"Content-Type": "application/octet-stream"},
                body=self.payload.to_blob(),
            )
        self.page_hits += 1
        return HttpResponse(
            200, {"Content-Type": "text/html"},
            body=(b"<html><body>totally legitimate content"
                  + EXPLOIT_MARKER + b"</body></html>"),
        )


class BenignSite:
    """The control group: an ordinary website."""

    def __init__(self, host: Host, port: int = 80) -> None:
        self.host = host
        self.page_hits = 0
        host.tcp.listen(port, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        parser = HttpParser("request")

        def on_data(c: TcpConnection, data: bytes) -> None:
            for _request in parser.feed(data):
                self.page_hits += 1
                c.send(HttpResponse(
                    200, {"Content-Type": "text/html"},
                    body=b"<html><body>cat pictures</body></html>",
                ).to_bytes())

        conn.on_data = on_data
        conn.on_remote_close = lambda c: c.close()
