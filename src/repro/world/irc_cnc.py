"""IRC C&C infrastructure: the server and the herder."""

from __future__ import annotations

import json
from repro.net.host import Host
from repro.net.irc import IrcNetwork, IrcServerEngine
from repro.net.tcp import TcpConnection
from repro.sim.engine import Simulator
from repro.sim.process import Process

IRC_PORT = 6667


class IrcCncServer:
    """An IRC server hosting the botnet's command channel."""

    def __init__(self, host: Host, network_name: str = "irc.cnc.example",
                 port: int = IRC_PORT) -> None:
        self.host = host
        self.network = IrcNetwork(network_name)
        self.connections_accepted = 0
        host.tcp.listen(port, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        self.connections_accepted += 1
        engine = IrcServerEngine(self.network, conn.send)
        conn.app = engine
        conn.on_data = lambda c, d: engine.feed(d)
        conn.on_remote_close = lambda c: c.close()


class IrcHerder:
    """The botmaster: periodically issues ``!spam`` commands by
    setting the command channel's topic."""

    def __init__(self, sim: Simulator, server: IrcCncServer,
                 campaign_source, channel: str = "#cmd",
                 command_interval: float = 120.0) -> None:
        self.sim = sim
        self.server = server
        self.campaign_source = campaign_source
        self.channel = channel
        self.commands_issued = 0
        self._process = Process(sim, command_interval, self._issue,
                                label="irc-herder", initial_delay=10.0)

    def start(self) -> None:
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    def _issue(self) -> None:
        campaign = self.campaign_source.next_batch()
        command = "!spam " + json.dumps(campaign)
        self.commands_issued += 1
        self.server.network.set_topic(self.channel, command)
