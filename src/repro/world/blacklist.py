"""Blacklist infrastructure — a Composite Blocking List (CBL) model.

§7.1 "Mysterious blacklisting": GQ's Waledac inmates appeared on the
CBL although the only permitted outside interaction was a single test
message to a GMail server.  Google had fingerprinted the bots'
recognizable HELO string (``wergvan``) and reported the senders'
addresses to blacklist providers.

The model captures that pipeline: mail servers (or anyone else) call
:meth:`BlockingList.report`; measurement code calls :meth:`listed` —
exactly the check GQ's reporting runs against its inmates' global
addresses (§6.5, §6.7: absence of blacklisting is evidence of
containment quality).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.net.addresses import IPv4Address


class BlacklistEntry:
    """Reputation state for one reported address."""

    __slots__ = ("address", "first_reported", "last_reported", "reasons",
                 "reports")

    def __init__(self, address: IPv4Address, timestamp: float,
                 reason: str) -> None:
        self.address = address
        self.first_reported = timestamp
        self.last_reported = timestamp
        self.reasons: List[str] = [reason]
        self.reports = 1


class BlockingList:
    """An IP reputation list fed by detection reports."""

    def __init__(self, name: str = "CBL",
                 reports_to_list: int = 1) -> None:
        self.name = name
        #: How many independent reports before an address is listed.
        self.reports_to_list = reports_to_list
        self._entries: Dict[IPv4Address, BlacklistEntry] = {}
        self.total_reports = 0

    def report(self, address: IPv4Address, timestamp: float,
               reason: str) -> None:
        self.total_reports += 1
        address = IPv4Address(address)
        entry = self._entries.get(address)
        if entry is None:
            self._entries[address] = BlacklistEntry(address, timestamp, reason)
        else:
            entry.reports += 1
            entry.last_reported = timestamp
            entry.reasons.append(reason)

    def listed(self, address: IPv4Address) -> bool:
        entry = self._entries.get(IPv4Address(address))
        return entry is not None and entry.reports >= self.reports_to_list

    def entry(self, address: IPv4Address) -> Optional[BlacklistEntry]:
        return self._entries.get(IPv4Address(address))

    def listed_addresses(self) -> Set[IPv4Address]:
        return {
            address for address, entry in self._entries.items()
            if entry.reports >= self.reports_to_list
        }

    def check_many(self, addresses) -> Dict[IPv4Address, bool]:
        """The reporting component's bulk check of inmate addresses."""
        return {IPv4Address(a): self.listed(a) for a in addresses}

    def __len__(self) -> int:
        return len(self.listed_addresses())

    def __repr__(self) -> str:
        return f"<BlockingList {self.name} listed={len(self)}>"
