"""Publisher websites and clickbot C&C.

The clickbot study's world: publisher pages whose ad links the bots
"click".  Clicks landing on *real* publishers are the harm a clickbot
containment policy must prevent (committed click fraud); the counting
here is what the containment-tradeoff benchmark reads.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.net.host import Host
from repro.net.http import HttpParser, HttpRequest, HttpResponse
from repro.net.tcp import TcpConnection


class PublisherSite:
    """A website that counts hits (ad clicks) per path."""

    def __init__(self, host: Host, port: int = 80,
                 body: bytes = b"<html>ads here</html>") -> None:
        self.host = host
        self.port = port
        self.body = body
        self.hits: List[HttpRequest] = []
        host.tcp.listen(port, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        parser = HttpParser("request")

        def on_data(c: TcpConnection, data: bytes) -> None:
            for request in parser.feed(data):
                self.hits.append(request)
                c.send(HttpResponse(200, body=self.body).to_bytes())

        conn.on_data = on_data
        conn.on_remote_close = lambda c: c.close()

    @property
    def click_count(self) -> int:
        return len(self.hits)

    def referers(self) -> List[Optional[str]]:
        return [hit.header("Referer") for hit in self.hits]


class ClickCncServer:
    """Serves clickbot task lists: GET /click/tasks?aff=<id>."""

    def __init__(self, host: Host, tasks: List[dict],
                 interval: float = 5.0, port: int = 80) -> None:
        self.host = host
        self.tasks = list(tasks)
        self.interval = interval
        self.port = port
        self.requests_served = 0
        host.tcp.listen(port, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        parser = HttpParser("request")

        def on_data(c: TcpConnection, data: bytes) -> None:
            for request in parser.feed(data):
                if request.path.startswith("/click/tasks"):
                    self.requests_served += 1
                    payload = json.dumps(
                        {"urls": self.tasks, "interval": self.interval}
                    ).encode("ascii")
                    c.send(HttpResponse(200, body=payload).to_bytes())
                else:
                    c.send(HttpResponse(404).to_bytes())

        conn.on_data = on_data
        conn.on_remote_close = lambda c: c.close()
