"""The colleague's side of a GRE tunnel: a small point of presence.

It owns (advertises) the donated prefix on the backbone, encapsulates
everything addressed into the prefix toward the farm gateway's tunnel
address, and decapsulates the farm's egress GRE back onto the
backbone.
"""

from __future__ import annotations

from typing import List

from repro.net.addresses import IPv4Address, IPv4Network, MacAddress
from repro.net.gre import PROTO_GRE, decapsulate, encapsulate
from repro.net.link import Link, Port
from repro.net.packet import ETHERTYPE_IPV4, EthernetFrame, IPv4Packet
from repro.net.router import Router
from repro.sim.engine import Simulator


class GrePop:
    """A backbone-attached device terminating one GRE tunnel."""

    def __init__(
        self,
        sim: Simulator,
        backbone: Router,
        pop_ip: IPv4Address,
        donated_networks: List[IPv4Network],
        farm_tunnel_ip: IPv4Address,
        latency: float = 0.02,
    ) -> None:
        self.sim = sim
        self.pop_ip = IPv4Address(pop_ip)
        self.donated_networks = list(donated_networks)
        self.farm_tunnel_ip = IPv4Address(farm_tunnel_ip)
        self.mac = MacAddress(0x02_99_00_00_00_01)

        self.port = Port(self, name="gre-pop")
        backbone_port = backbone.attach_port()
        Link(sim, self.port, backbone_port, latency)
        backbone.add_route(IPv4Network(f"{self.pop_ip}/32"), backbone_port)
        for network in donated_networks:
            backbone.add_route(network, backbone_port)
        backbone._neighbor_macs[backbone_port] = self.mac

        self.ingress_encapsulated = 0
        self.egress_decapsulated = 0

    def attach_port(self) -> Port:
        return self.port

    def receive_frame(self, frame: EthernetFrame, port: Port) -> None:
        packet = frame.payload
        if not isinstance(packet, IPv4Packet):
            return
        if packet.proto == PROTO_GRE and packet.dst == self.pop_ip:
            inner = decapsulate(packet)
            if inner is not None:
                # Farm egress: hand the inner packet back to the
                # backbone for native forwarding.
                self.egress_decapsulated += 1
                self.port.send(EthernetFrame(
                    self.mac, MacAddress.broadcast(), inner,
                    ethertype=ETHERTYPE_IPV4))
            return
        if any(network.contains(packet.dst)
               for network in self.donated_networks):
            # Ingress for the donated prefix: tunnel it to the farm.
            self.ingress_encapsulated += 1
            outer = encapsulate(packet, self.pop_ip, self.farm_tunnel_ip)
            self.port.send(EthernetFrame(
                self.mac, MacAddress.broadcast(), outer,
                ethertype=ETHERTYPE_IPV4))

    def __repr__(self) -> str:
        return f"<GrePop {self.pop_ip} nets={[str(n) for n in self.donated_networks]}>"
