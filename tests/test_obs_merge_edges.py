"""Merge edge cases for sharded telemetry and journal snapshots.

The happy path (N shards, disjoint labels) is covered by the campaign
tests; these pin the edges the merge must not mishandle: disjoint
metric keys merged without labels, empty tracers, duplicate shard
labels (a caller bug — must raise, not silently interleave causal
chains), and journal merge determinism including serial-vs-parallel
digest parity over a real campaign.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.journal import JOURNAL_SCHEMA, Journal, journal_digest
from repro.obs.merge import merge_journals, merge_snapshots

pytestmark = pytest.mark.obs


def metric_snapshot(counters=None, traces=None, time=0.0):
    return {
        "schema": "gq.telemetry/1",
        "enabled": True,
        "time": time,
        "counters": dict(counters or {}),
        "gauges": {},
        "histograms": {},
        "traces": dict(traces or {}),
        "hub": {"published": 0, "retained": 0, "evicted": 0},
        "tracer": {"spans": 0, "traces": 0, "evicted": 0},
    }


def journal_snapshot(events, time=0.0, rings=None):
    return {
        "schema": JOURNAL_SCHEMA,
        "enabled": True,
        "time": time,
        "recorded": len(events),
        "evicted": 0,
        "events": events,
        "rings": dict(rings or {}),
    }


def event(seq, t, kind, flow=None, vlan=None, parent=None, **fields):
    return {"seq": seq, "t": t, "kind": kind, "flow": flow,
            "vlan": vlan, "parent": parent, "fields": fields}


class TestSnapshotMergeEdges:
    def test_disjoint_metric_keys_merge_without_labels(self):
        a = metric_snapshot(counters={"flows{subfarm=a}": 3})
        b = metric_snapshot(counters={"flows{subfarm=b}": 5})
        merged = merge_snapshots([a, b])
        assert merged["counters"] == {"flows{subfarm=a}": 3,
                                      "flows{subfarm=b}": 5}

    def test_colliding_keys_without_labels_raise(self):
        a = metric_snapshot(counters={"flows": 3})
        b = metric_snapshot(counters={"flows": 5})
        with pytest.raises(ValueError, match="collision"):
            merge_snapshots([a, b])

    def test_empty_tracers_merge_clean(self):
        a = metric_snapshot(traces={})
        b = metric_snapshot(traces={})
        merged = merge_snapshots(
            [a, b], labels=[{"shard": "0"}, {"shard": "1"}])
        assert merged["traces"] == {}
        assert merged["tracer"] == {"spans": 0, "traces": 0, "evicted": 0}

    def test_duplicate_shard_labels_collide(self):
        a = metric_snapshot(counters={"flows": 3})
        b = metric_snapshot(counters={"flows": 5})
        with pytest.raises(ValueError, match="collision"):
            merge_snapshots(
                [a, b], labels=[{"shard": "0"}, {"shard": "0"}])


class TestJournalMergeEdges:
    def test_duplicate_shard_labels_raise(self):
        a = journal_snapshot([event(0, 1.0, "flow.created")])
        b = journal_snapshot([event(0, 2.0, "flow.created")])
        with pytest.raises(ValueError, match="duplicate shard labels"):
            merge_journals([a, b],
                           labels=[{"shard": "0"}, {"shard": "0"}])

    def test_empty_journals_merge_clean(self):
        merged = merge_journals(
            [journal_snapshot([]), journal_snapshot([])],
            labels=[{"shard": "0"}, {"shard": "1"}])
        assert merged["events"] == []
        assert merged["recorded"] == 0

    def test_causal_chains_stay_shard_local(self):
        a = journal_snapshot([
            event(0, 1.0, "flow.created", flow="f"),
            event(1, 2.0, "verdict.issued", flow="f", parent=0),
        ])
        b = journal_snapshot([
            event(0, 1.5, "flow.created", flow="f"),
        ])
        merged = merge_journals(
            [a, b], labels=[{"shard": "0"}, {"shard": "1"}])
        by_seq = {e["seq"]: e for e in merged["events"]}
        # Same per-shard seq and flow id, yet no cross-shard aliasing.
        assert by_seq["shard=0/1"]["parent"] == "shard=0/0"
        assert by_seq["shard=0/0"]["flow"] == "shard=0/f"
        assert by_seq["shard=1/0"]["flow"] == "shard=1/f"

    def test_merge_order_independent(self):
        a = journal_snapshot([event(0, 1.0, "flow.created", vlan=1)])
        b = journal_snapshot([event(0, 0.5, "flow.created", vlan=2)])
        forward = merge_journals(
            [a, b], labels=[{"shard": "0"}, {"shard": "1"}])
        backward = merge_journals(
            [b, a], labels=[{"shard": "1"}, {"shard": "0"}])
        assert json.dumps(forward, sort_keys=True) == \
            json.dumps(backward, sort_keys=True)
        # Sorted by (t, shard, seq): shard 1's earlier event leads.
        assert [e["seq"] for e in forward["events"]] == \
            ["shard=1/0", "shard=0/0"]

    def test_ring_collision_raises(self):
        ring = {"capacity": 4, "dropped": 0, "samples": [[1.0, 2.0]]}
        a = journal_snapshot([], rings={"gw.flows": ring})
        b = journal_snapshot([], rings={"gw.flows": ring})
        with pytest.raises(ValueError, match="duplicate shard labels"):
            merge_journals([a, b],
                           labels=[{"shard": "3"}, {"shard": "3"}])
        merged = merge_journals(
            [a, b], labels=[{"shard": "0"}, {"shard": "1"}])
        assert sorted(merged["rings"]) == \
            ["shard=0/gw.flows", "shard=1/gw.flows"]

    def test_schema_mismatch_raises(self):
        a = journal_snapshot([])
        b = dict(journal_snapshot([]), schema="gq.journal/999")
        with pytest.raises(ValueError, match="schema mismatch"):
            merge_journals([a, b],
                           labels=[{"shard": "0"}, {"shard": "1"}])

    def test_duplicate_labels_error_names_both_sources(self):
        a = journal_snapshot([event(0, 1.0, "flow.created")])
        b = journal_snapshot([event(0, 2.0, "flow.created")])
        with pytest.raises(ValueError,
                           match="duplicate shard labels") as excinfo:
            merge_journals(
                [a, b], labels=[{"shard": "4"}, {"shard": "4"}],
                sources=["shard 4 @ hostA:9000",
                         "shard 4 @ hostB:9000"])
        message = str(excinfo.value)
        assert "shard 4 @ hostA:9000" in message
        assert "shard 4 @ hostB:9000" in message

    def test_snapshot_collision_error_names_both_sources(self):
        a = metric_snapshot(counters={"flows": 3})
        b = metric_snapshot(counters={"flows": 5})
        with pytest.raises(ValueError, match="collision") as excinfo:
            merge_snapshots(
                [a, b], labels=[{"shard": "0"}, {"shard": "0"}],
                sources=["shard 0 @ hostA:9000",
                         "shard 0 @ hostB:9000"])
        message = str(excinfo.value)
        assert "shard 0 @ hostA:9000" in message
        assert "shard 0 @ hostB:9000" in message

    def test_three_host_merge_is_arrival_order_independent(self):
        # Three shards as if returned by three different hosts, merged
        # in every arrival order: byte-identical journals each time.
        import itertools

        shards = [
            (str(index), journal_snapshot(
                [event(0, 1.0 + 0.1 * index, "flow.created",
                       flow="f", vlan=index),
                 event(1, 2.0 - 0.2 * index, "verdict.issued",
                       flow="f", parent=0)]))
            for index in range(3)
        ]
        renders = set()
        for order in itertools.permutations(range(3)):
            merged = merge_journals(
                [shards[i][1] for i in order],
                labels=[{"shard": shards[i][0]} for i in order],
                sources=[f"shard {shards[i][0]} @ host{shards[i][0]}"
                         for i in order])
            renders.add(json.dumps(merged, sort_keys=True))
        assert len(renders) == 1
        only = json.loads(renders.pop())
        assert len(only["events"]) == 6

    def test_live_journal_snapshots_round_trip_through_merge(self):
        clock = [0.0]
        journals = []
        for shard in range(2):
            journal = Journal(clock=lambda: clock[0])
            clock[0] = 1.0 + shard
            root = journal.record("flow.created", flow="tcp/1",
                                  vlan=1)
            journal.record("verdict.issued", flow="tcp/1", vlan=1,
                           verdict="allow")
            assert root.parent is None
            journals.append(journal.snapshot())
        merged = merge_journals(
            journals, labels=[{"shard": "0"}, {"shard": "1"}])
        assert merged["recorded"] == 4
        assert journal_digest(merged) == journal_digest(merged)


class TestSerialParallelParity:
    """Journal digest parity: the same campaign merged from a serial
    run and from a 2-worker parallel run must be byte-identical."""

    @pytest.mark.slow
    def test_campaign_journal_digest_parity(self):
        from repro.parallel import Campaign, run_campaign

        def summary(workers):
            campaign = Campaign.seed_sweep(
                "journal-parity",
                "repro.parallel.tasks:streaming_farm_shard",
                params={"subfarms": 1, "inmates": 1, "rounds": 4,
                        "duration": 40.0, "journal": True},
                seeds=[1, 2])
            return run_campaign(campaign, workers=workers).to_dict()

        serial = summary(workers=1)
        parallel = summary(workers=2)
        assert serial["merged"]["journal_digest"] == \
            parallel["merged"]["journal_digest"]
        assert json.dumps(serial["merged"]["journal"], sort_keys=True) \
            == json.dumps(parallel["merged"]["journal"], sort_keys=True)
        assert serial["merged"]["journal"]["events"], \
            "parity over an empty journal proves nothing"
