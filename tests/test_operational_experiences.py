"""§7.1 operational experiences as executable scenarios."""

from __future__ import annotations

import pytest

from repro.experiments.storm_infiltration import run_storm
from repro.experiments.waledac_fidelity import run_waledac

pytestmark = [pytest.mark.integration, pytest.mark.slow]


class TestWaledacBlacklisting:
    """'Mysterious blacklisting' / 'Satisfying fidelity'."""

    def test_permitted_test_message_gets_inmate_blacklisted(self):
        result = run_waledac("test-message", duration=600)
        # Exactly the paper's surprise: one innocuous-looking test
        # message, and the CBL lists the inmate.
        assert result.spam_delivered_outside >= 1
        assert result.inmate_blacklisted

    def test_plain_sink_keeps_addresses_clean_but_loses_the_bot(self):
        result = run_waledac("plain-sink", duration=600)
        assert not result.inmate_blacklisted
        assert result.spam_delivered_outside == 0
        assert not result.bot_alive
        assert result.sink_data_transfers == 0
        assert result.banner_rejections >= 1

    def test_banner_grabbing_keeps_bot_alive_and_contained(self):
        result = run_waledac("banner-grabbing", duration=600)
        assert result.bot_alive
        assert result.sink_data_transfers > 20
        assert result.spam_delivered_outside == 0
        assert not result.inmate_blacklisted
        assert result.banner_fetches >= 1

    def test_fidelity_dominates_for_harvest_volume(self):
        plain = run_waledac("plain-sink", duration=600)
        grabbing = run_waledac("banner-grabbing", duration=600)
        assert grabbing.sink_data_transfers > plain.sink_data_transfers


class TestStormUnexpectedVisitors:
    """'Unexpected visitors': iframe injection through proxy bots."""

    def test_tight_policy_catches_ftp_jobs_at_sink(self):
        result = run_storm("tight", duration=600)
        assert result.overlay_connections > 0, "reachability preserved"
        assert result.socks_jobs > 0, "jobs arrived through SOCKS"
        assert result.ftp_attempts_at_sink > 0, "the sink saw the FTP"
        assert result.jobs_succeeded == 0
        assert not result.site_defaced

    def test_loose_policy_lets_the_attack_through(self):
        result = run_storm("loose", duration=600)
        assert result.jobs_succeeded > 0
        assert result.site_defaced
        assert result.ftp_attempts_at_sink == 0

    def test_postures_diverge_only_in_harm(self):
        tight = run_storm("tight", duration=600)
        loose = run_storm("loose", duration=600)
        # Same botnet activity either way...
        assert tight.overlay_connections == loose.overlay_connections
        # ...but only tight containment prevents the harm.
        assert tight.jobs_succeeded < loose.jobs_succeeded
