"""§7.1 exploratory containment: the error-code decoding study."""

from __future__ import annotations

import pytest

from repro.experiments.error_codes import (
    CONDITIONS,
    FIRMWARE_ERROR_TABLE,
    recovered_table,
    run_condition,
    run_error_code_study,
)

pytestmark = [pytest.mark.integration, pytest.mark.slow]


class TestErrorCodeStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_error_code_study(duration=250)

    def test_every_condition_produced_reports(self, study):
        for condition, codes in study.observed.items():
            assert codes, f"no reports observed under {condition}"

    def test_full_firmware_table_recovered(self, study):
        assert recovered_table(study) == FIRMWARE_ERROR_TABLE

    def test_conditions_are_distinguishable(self, study):
        codes = [code for code in study.recovered.values()]
        assert len(set(codes)) == len(CONDITIONS), (
            "each injected condition maps to a distinct internal code")

    def test_single_condition_is_safe(self):
        # run_condition asserts zero outside delivery internally; this
        # re-runs one cell as an explicit safety check.
        codes = run_condition("reject-at-rcpt", duration=200)
        assert codes and set(codes) == {FIRMWARE_ERROR_TABLE["rcpt"]}
