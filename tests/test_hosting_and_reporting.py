"""Hosting backends, raw iron controller units, report scheduler."""

from __future__ import annotations

import pytest

from repro.inmates.hosting import (
    EmulatedBackend,
    Inmate,
    InmateState,
    RawIronBackend,
    VirtualizedBackend,
)
from repro.inmates.rawiron import MachineState, RawIronController
from repro.net.link import Switch
from repro.sim.engine import Simulator


def make_inmate(backend=None, seed=7):
    sim = Simulator(seed=seed)
    switch = Switch(sim)
    booted = []

    def image(host):
        booted.append(host)
        host.platform_seen = host.platform  # type: ignore[attr-defined]

    inmate = Inmate(sim, vlan=5, switch=switch, image_factory=image,
                    backend=backend)
    return sim, inmate, booted


class TestHostingBackends:
    def test_vm_backend_is_detectable(self):
        sim, inmate, booted = make_inmate(VirtualizedBackend())
        inmate.start()
        sim.run(until=120)
        host = booted[0]
        assert host.virtualized is True
        assert host.platform == "vmware-esx"

    def test_raw_iron_is_not_detectable(self):
        """§6.4: raw iron exists to defeat VM-detection; a specimen
        checking the platform sees nothing."""
        sim, inmate, booted = make_inmate(RawIronBackend())
        inmate.start()
        sim.run(until=120)
        assert booted[0].virtualized is False
        assert booted[0].platform == "raw-iron"

    def test_revert_latency_ordering(self):
        # Snapshots beat emulation beat raw-iron reimaging.
        assert (VirtualizedBackend().revert_latency
                < EmulatedBackend().revert_latency
                < RawIronBackend().revert_latency)

    def test_reboot_keeps_generation(self):
        sim, inmate, booted = make_inmate()
        inmate.start()
        sim.run(until=120)
        generation = inmate.generation
        inmate.reboot()
        sim.run(until=240)
        assert inmate.generation == generation + 1  # fresh host object
        assert inmate.reverts == 0

    def test_terminate_is_final(self):
        sim, inmate, booted = make_inmate()
        inmate.start()
        sim.run(until=120)
        inmate.terminate()
        assert inmate.state == InmateState.TERMINATED
        with pytest.raises(RuntimeError):
            inmate.start()

    def test_stop_then_start(self):
        sim, inmate, booted = make_inmate()
        inmate.start()
        sim.run(until=120)
        inmate.stop()
        assert inmate.state == InmateState.STOPPED
        inmate.start()
        sim.run(until=240)
        assert inmate.state == InmateState.RUNNING


class TestRawIronController:
    def test_network_reimage_phase_sequence(self):
        sim = Simulator(seed=1)
        controller = RawIronController(sim)
        machine = controller.add_machine("ri0")
        done = []
        controller.reimage("ri0", on_done=lambda m: done.append(m))
        sim.run(until=1000)
        assert done == [machine]
        assert machine.state == MachineState.LOCAL_BOOT
        assert machine.power_cycles == 2  # into PXE, then into local
        assert not machine.network_boot_enabled
        phases = [entry.split(" ", 1)[1] for entry in machine.history]
        assert phases[:4] == ["power-cycle", "pxe-boot (TRK)",
                              "image-transfer", "image-write"]

    def test_cycle_time_near_six_minutes(self):
        sim = Simulator(seed=1)
        controller = RawIronController(sim)
        controller.add_machine("ri0")
        controller.reimage("ri0")
        sim.run(until=1000)
        (machine_id, start, end), = controller.reimage_log
        assert 300 <= end - start <= 420

    def test_parallel_local_restore(self):
        sim = Simulator(seed=1)
        controller = RawIronController(sim)
        for index in range(6):
            controller.add_machine(f"ri{index}")
        controller.restore_all_from_local_partition()
        sim.run(until=2000)
        assert len(controller.reimage_log) == 6
        ends = [end for _id, _start, end in controller.reimage_log]
        assert max(ends) - min(ends) < 1.0, "restores run simultaneously"

    def test_unique_vlans_per_machine(self):
        sim = Simulator(seed=1)
        controller = RawIronController(sim)
        machines = [controller.add_machine(f"ri{i}") for i in range(5)]
        vlans = {m.vlan for m in machines}
        assert len(vlans) == 5


class TestReportScheduler:
    def test_periodic_reports_accumulate(self):
        from repro.core.policy import ReflectAll
        from repro.farm import Farm, FarmConfig
        from repro.reporting.report import ReportScheduler
        from tests.test_containment_end_to_end import http_fetch_image

        farm = Farm(FarmConfig(seed=121))
        sub = farm.create_subfarm("test")
        sub.add_catchall_sink()
        image, _results = http_fetch_image()
        sub.create_inmate(image_factory=image, policy=ReflectAll())
        scheduler = ReportScheduler(farm.sim, [sub], interval=300.0)
        farm.run(until=1000)
        assert len(scheduler.reports) == 3  # t=300, 600, 900
        timestamp, rendered = scheduler.reports[-1]
        assert "Subfarm 'test'" in rendered
        assert "REFLECT" in rendered
