"""Corpus-replay regression tests for the fuzz plane.

``tests/fuzz_corpus/`` pins hostile inputs (named
``<protocol>__<sha8>.bin``) that each parser must answer with a clean
ParseError — or, for the tolerant line engines, absorb silently.  The
farm-level test additionally feeds every pinned blob straight into a
live gateway trunk and asserts the event loop survives.  Any crash the
fuzzer ever finds gets minimized and pinned here, so it can never
quietly return.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.farm import Farm, FarmConfig
from repro.fuzz import (
    CorpusStore,
    MutationEngine,
    TARGETS,
    fuzz_parsers,
    minimize,
    replay_corpus,
)
from repro.net.errors import ParseError

CORPUS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "fuzz_corpus")


class TestCorpusReplay:
    def test_corpus_is_present_and_covers_targets(self):
        entries = CorpusStore(CORPUS_DIR).entries()
        assert len(entries) >= 40
        covered = {protocol for protocol, _, _ in entries}
        assert covered == set(TARGETS)

    def test_no_pinned_input_escapes_the_taxonomy(self):
        summary = replay_corpus(CORPUS_DIR)
        assert summary["escapes"] == []
        assert summary["skipped"] == []
        assert summary["replayed"] >= 40

    def test_farm_survives_every_pinned_blob(self):
        """Feed each corpus blob into a live trunk as a wire frame;
        the run completing is the assertion."""
        farm = Farm(FarmConfig(seed=5))
        sub = farm.create_subfarm("replay")
        when = 1.0
        for index, (_, _, data) in enumerate(
                CorpusStore(CORPUS_DIR).entries()):
            vlan = (index % 30) + 1
            farm.sim.schedule(
                when, lambda v=vlan, d=data: sub.router.ingest_wire(v, d),
                label="corpus-replay")
            when += 0.01
        farm.run(until=when + 5.0)
        assert farm.sim.now >= when


class TestFuzzDeterminism:
    def test_same_seed_same_digest(self):
        first = fuzz_parsers(seed=42, iterations=160)
        second = fuzz_parsers(seed=42, iterations=160)
        assert first["digest"] == second["digest"]
        assert first["escapes"] == [] and second["escapes"] == []

    def test_different_seed_different_digest(self):
        assert fuzz_parsers(seed=42, iterations=160)["digest"] != \
            fuzz_parsers(seed=43, iterations=160)["digest"]

    def test_mutation_engine_is_seed_deterministic(self):
        data = bytes(range(64))
        a = MutationEngine(7)
        b = MutationEngine(7)
        assert [a.mutate(data) for _ in range(20)] == \
            [b.mutate(data) for _ in range(20)]


class TestMinimizer:
    def test_shrinks_while_predicate_holds(self):
        # Failure depends only on a marker byte: the minimizer should
        # strip nearly everything else.
        data = os.urandom(0) + b"A" * 200 + b"\xEE" + b"B" * 200
        shrunk = minimize(data, lambda d: b"\xEE" in d)
        assert b"\xEE" in shrunk
        assert len(shrunk) < 20

    def test_returns_input_when_predicate_never_held(self):
        data = b"well-formed"
        assert minimize(data, lambda d: False) == data


class TestCorpusStore:
    def test_add_names_by_protocol_and_digest(self, tmp_path):
        store = CorpusStore(str(tmp_path))
        path = store.add("dns", b"\x01\x02")
        name = os.path.basename(path)
        assert name.startswith("dns__") and name.endswith(".bin")
        # Idempotent: same bytes, same file.
        assert store.add("dns", b"\x01\x02") == path
        assert len(store.entries()) == 1

    def test_escape_gets_pinned(self, tmp_path):
        """An artificial target whose parser throws TypeError must
        yield a minimized corpus entry via the fuzz loop machinery."""
        store = CorpusStore(str(tmp_path))
        rng = random.Random(1)
        data = TARGETS["udp"].generate(rng)

        def bad_parse(blob):
            raise TypeError("synthetic crash")

        shrunk = minimize(data, lambda d: True)
        store.add("udp", shrunk)
        (protocol, _, pinned), = store.entries()
        assert protocol == "udp"
        with pytest.raises(TypeError):
            bad_parse(pinned)


class TestParserContract:
    @pytest.mark.parametrize("name", sorted(TARGETS))
    def test_500_iterations_per_target(self, name):
        """Per-target contract check: generate+mutate 500 inputs; the
        parser may succeed or raise ParseError, nothing else."""
        target = TARGETS[name]
        rng = random.Random(sum(name.encode()))  # stable across processes
        engine = MutationEngine(0xC0FFEE)
        for index in range(500):
            data = target.generate(rng)
            if index % 2:
                data = engine.mutate(data)
            try:
                target.parse(data)
            except ParseError:
                pass
