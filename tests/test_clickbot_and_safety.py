"""Clickbot containment end to end, and the safety filter as the
last line of defense (§5.1)."""

from __future__ import annotations

import pytest

from repro.core.policy import AllowAll, ContainmentPolicy
from repro.farm import Farm, FarmConfig
from repro.inmates.images import autoinfect_image
from repro.malware.corpus import Sample
from repro.net.addresses import IPv4Address
from repro.policies.clickbot import ClickbotPolicy
from repro.services.dhcp import DhcpClient
from repro.world.builder import ExternalWorld

pytestmark = pytest.mark.integration


def build_click_world(farm):
    world = ExternalWorld(farm)
    publisher = world.add_publisher("news-portal.example")
    world.add_click_cnc("clickbot-cc.example", tasks=[
        {"host": "news-portal.example", "path": f"/article/{i}",
         "referer": "http://search.example/q"} for i in range(6)
    ], interval=2.0)
    return world, publisher


class TestClickbotWorkflow:
    def test_contained_clickbot_learns_without_fraud(self):
        farm = Farm(FarmConfig(seed=71))
        sub = farm.create_subfarm("clickstudy")
        world, publisher = build_click_world(farm)
        sink = sub.add_catchall_sink()
        policy = ClickbotPolicy()
        inmate = sub.create_inmate(image_factory=autoinfect_image(),
                                   policy=policy)
        policy.set_sample(inmate.vlan, inmate.vlan, Sample("clickbot"))
        farm.run(until=400)

        specimen = getattr(inmate.host, "specimen", None)
        assert specimen is not None
        # The C&C task fetch went out (the study's subject matter)...
        assert specimen.stats.get("cnc_fetches", 0) >= 1
        # ...but zero clicks landed on the real publisher.
        assert publisher.click_count == 0
        # The clicks are visible in the sink, referer chain included.
        click_payloads = sink.payloads_for_port(80)
        assert any(b"Referer: http://search.example/q" in p
                   for p in click_payloads)

    def test_unconstrained_clickbot_commits_fraud(self):
        farm = Farm(FarmConfig(seed=71))
        sub = farm.create_subfarm("clickstudy")
        world, publisher = build_click_world(farm)
        sub.add_catchall_sink()
        from repro.baselines.policies import UnconstrainedPolicy

        policy = UnconstrainedPolicy()
        inmate = sub.create_inmate(image_factory=autoinfect_image(),
                                   policy=policy)
        policy.set_sample(inmate.vlan, inmate.vlan, Sample("clickbot"))
        farm.run(until=400)
        assert publisher.click_count > 0


def flooder_image(target: str, rate_interval: float = 0.02):
    """A specimen that opens connections as fast as it can — the
    flooding behaviour the safety filter exists to stop."""

    def image(host):
        def flood(configured_host):
            counter = {"n": 0}

            def tick():
                counter["n"] += 1
                configured_host.tcp.connect(IPv4Address(target),
                                            8000 + counter["n"] % 100)
                configured_host.sim.schedule(rate_interval, tick,
                                             label="flood")

            tick()

        DhcpClient(host, on_configured=flood).start()

    return image


class TestSafetyFilter:
    def test_filter_caps_even_a_forward_happy_policy(self):
        """§5.1: the safety filter is independent of policy — even a
        buggy AllowAll cannot turn an inmate into a flooder."""
        farm = Farm(FarmConfig(
            seed=73,
            safety_max_flows_per_window=50,
            safety_max_flows_per_destination=50,
            safety_window=60.0,
        ))
        sub = farm.create_subfarm("flood")
        victim = farm.add_external_host("victim", "203.0.113.66")
        victim.tcp.listen_any(lambda conn: None)
        sub.create_inmate(image_factory=flooder_image("203.0.113.66"),
                          policy=AllowAll())
        farm.run(until=120)

        assert sub.safety.flows_refused > 0
        assert sub.safety.alerts, "refusals must be visible to operators"
        # At most the window budget got through per 60s window (plus
        # slack for windows spanning the run).
        assert sub.safety.flows_admitted <= 50 * 3

    def test_filter_alerts_identify_the_inmate(self):
        farm = Farm(FarmConfig(
            seed=73,
            safety_max_flows_per_window=20,
            safety_max_flows_per_destination=20,
            safety_window=60.0,
        ))
        sub = farm.create_subfarm("flood")
        victim = farm.add_external_host("victim", "203.0.113.66")
        victim.tcp.listen_any(lambda conn: None)
        inmate = sub.create_inmate(
            image_factory=flooder_image("203.0.113.66"),
            policy=AllowAll())
        farm.run(until=120)
        assert all(alert.vlan == inmate.vlan for alert in sub.safety.alerts)
