"""UDP containment: the shimmed-datagram path for every verdict,
including DNS impersonation via REWRITE (redirecting hardcoded
external resolvers is classic C&C-takeover tradecraft)."""

from __future__ import annotations

import pytest

from repro.core.policy import AllowAll, ContainmentPolicy, DefaultDeny
from repro.farm import Farm, FarmConfig
from repro.net.addresses import IPv4Address
from repro.net.dns import DnsMessage, DnsRecord, QTYPE_A
from repro.net.packet import IPv4Packet, UDPDatagram
from repro.services.dhcp import DhcpClient

pytestmark = pytest.mark.integration

EXTERNAL_DNS = "203.0.113.53"
EXTERNAL_ECHO = "203.0.113.77"


def udp_probe_image(target: str, port: int, payload: bytes, replies):
    """Boot, then send one UDP datagram and record any reply."""

    def image(host):
        def probe(configured_host):
            src_port = configured_host.udp.allocate_port()

            def on_reply(h, packet, datagram):
                replies.append(datagram.payload)

            configured_host.udp.bind(src_port, on_reply)
            configured_host.udp.sendto(payload, IPv4Address(target), port,
                                       src_port)

        DhcpClient(host, on_configured=probe).start()

    return image


def echo_service(host, port=7777):
    received = []

    def handler(h, packet, datagram):
        received.append(datagram.payload)
        h.udp.sendto(b"echo:" + datagram.payload, packet.src,
                     datagram.sport, src_port=datagram.dport)

    host.udp.bind(port, handler)
    return received


class TestUdpForward:
    def test_forwarded_datagram_round_trips(self):
        farm = Farm(FarmConfig(seed=81))
        sub = farm.create_subfarm("udp")
        echo_host = farm.add_external_host("echo", EXTERNAL_ECHO)
        received = echo_service(echo_host)
        replies = []
        sub.create_inmate(
            image_factory=udp_probe_image(EXTERNAL_ECHO, 7777, b"ping",
                                          replies),
            policy=AllowAll())
        farm.run(until=120)
        assert received == [b"ping"]
        assert replies == [b"echo:ping"]
        assert sub.containment_server.verdict_counts.get("FORWARD") == 1

    def test_forwarded_datagram_is_natted(self):
        farm = Farm(FarmConfig(seed=81))
        sub = farm.create_subfarm("udp")
        echo_host = farm.add_external_host("echo", EXTERNAL_ECHO)
        sources = []

        def handler(h, packet, datagram):
            sources.append(packet.src)

        echo_host.udp.bind(7777, handler)
        replies = []
        inmate = sub.create_inmate(
            image_factory=udp_probe_image(EXTERNAL_ECHO, 7777, b"x",
                                          replies),
            policy=AllowAll())
        farm.run(until=120)
        assert sources and sources[0] == sub.nat.global_for(inmate.vlan)


class TestUdpDrop:
    def test_dropped_datagram_vanishes(self):
        farm = Farm(FarmConfig(seed=82))
        sub = farm.create_subfarm("udp")
        echo_host = farm.add_external_host("echo", EXTERNAL_ECHO)
        received = echo_service(echo_host)
        replies = []
        sub.create_inmate(
            image_factory=udp_probe_image(EXTERNAL_ECHO, 7777, b"gone",
                                          replies),
            policy=DefaultDeny())
        farm.run(until=120)
        assert received == []
        assert replies == []
        assert sub.containment_server.verdict_counts.get("DROP") == 1


class TestUdpReflect:
    def test_reflected_datagram_lands_in_sink(self):
        farm = Farm(FarmConfig(seed=83))
        sub = farm.create_subfarm("udp")
        sink = sub.add_catchall_sink()
        echo_host = farm.add_external_host("echo", EXTERNAL_ECHO)
        received = echo_service(echo_host)

        from repro.core.policy import ReflectAll

        replies = []
        sub.create_inmate(
            image_factory=udp_probe_image(EXTERNAL_ECHO, 7777, b"probe",
                                          replies),
            policy=ReflectAll())
        farm.run(until=120)
        assert received == []
        udp_records = [r for r in sink.records if r.proto == "udp"]
        assert len(udp_records) == 1
        assert bytes(udp_records[0].payload) == b"probe"
        assert udp_records[0].dst_port == 7777


class DnsTakeoverPolicy(ContainmentPolicy):
    """REWRITE external DNS: answer C&C lookups with an address we
    control — containment-grade sinkholing."""

    SINKHOLE = IPv4Address("10.3.0.9")

    def decide(self, ctx):
        if ctx.flow.resp_port == 53 and ctx.flow.proto == 17:
            return self.rewrite(ctx, annotation="DNS sinkholing")
        return self.deny(ctx)

    def rewrite_datagram(self, ctx, payload):
        try:
            query = DnsMessage.from_bytes(payload)
        except ValueError:
            return None
        if query.is_response or query.question.qtype != QTYPE_A:
            return None
        reply = query.reply(
            [DnsRecord.a(query.question.name, self.SINKHOLE)])
        return reply.to_bytes()


class TestUdpRewriteDnsTakeover:
    def test_external_dns_query_is_impersonated(self):
        farm = Farm(FarmConfig(seed=84))
        sub = farm.create_subfarm("udp")
        # The real external resolver would answer with the true C&C
        # address; it must never even see the query.
        from repro.world.dns_authority import AuthoritativeDns

        dns_host = farm.add_external_host("real-dns", EXTERNAL_DNS)
        authority = AuthoritativeDns(dns_host)
        authority.add_a("cc.badguys.example", IPv4Address("198.51.100.66"))

        query = DnsMessage.query(77, "cc.badguys.example").to_bytes()
        replies = []
        sub.create_inmate(
            image_factory=udp_probe_image(EXTERNAL_DNS, 53, query, replies),
            policy=DnsTakeoverPolicy())
        farm.run(until=120)

        assert authority.queries_answered == 0, "query must not escape"
        assert len(replies) == 1
        answer = DnsMessage.from_bytes(replies[0])
        assert answer.txid == 77
        assert str(answer.answers[0].address) == "10.3.0.9"
        counts = sub.containment_server.verdict_counts
        assert counts.get("REWRITE") == 1
