"""Experiment harnesses: strictness matrix, classification, policy
iteration, containment trade-off, scalability, raw iron."""

from __future__ import annotations

import pytest

from repro.experiments.classification import (
    fingerprint_sample,
    run_split_personality,
)
from repro.experiments.containment_tradeoff import run_all_regimes
from repro.experiments.policy_iteration import develop_policy
from repro.experiments.rawiron_cycle import run_comparison
from repro.experiments.scalability import (
    run_cs_load,
    run_gateway_load,
    vlan_capacity_demo,
)
from repro.experiments.smtp_strictness import run_matrix
from repro.malware.corpus import Sample

pytestmark = [pytest.mark.integration, pytest.mark.slow]


class TestSmtpStrictnessMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_matrix(duration=400)

    def test_connection_level_healthy_everywhere(self, matrix):
        # The deceptive part of the §7.1 lesson: sessions look fine
        # regardless of strictness.
        for cell in matrix.values():
            assert cell.sessions > 20

    def test_quirky_bot_starves_on_strict_sink(self, matrix):
        assert matrix[("grum", "strict")].data_transfers == 0

    def test_quirky_bot_fine_on_lenient_sink(self, matrix):
        assert matrix[("grum", "lenient")].content_ratio > 0.9

    def test_clean_bot_unaffected_by_strictness(self, matrix):
        assert matrix[("megad", "strict")].content_ratio > 0.9
        assert matrix[("megad", "lenient")].content_ratio > 0.9


class TestClassification:
    def test_families_have_distinct_fingerprints(self):
        prints = {
            family: fingerprint_sample(Sample(family), duration=120,
                                       seed=50 + i)
            for i, family in enumerate(
                ("rustock", "grum", "megad", "waledac"))
        }
        for a in prints:
            for b in prints:
                if a != b:
                    assert prints[a].similarity(prints[b]) < 0.5

    def test_same_family_fingerprints_converge(self):
        a = fingerprint_sample(Sample("grum"), duration=120, seed=60)
        b = fingerprint_sample(Sample("grum", params={"variant": 9}),
                               duration=120, seed=61)
        assert a.similarity(b) > 0.9

    def test_split_personality_shows_both_faces(self):
        outcomes = run_split_personality(executions=8, duration=120)
        assert "grum" in outcomes and "megad" in outcomes


class TestPolicyIteration:
    def test_grum_converges_with_zero_harm(self):
        history = develop_policy("grum", duration=300)
        assert history[-1].fully_alive
        assert 2 <= len(history) <= 3
        assert all(h.harm_outside == 0 for h in history)

    def test_rustock_needs_an_extra_round(self):
        history = develop_policy("rustock", duration=300)
        assert history[-1].fully_alive
        # Two distinct C&C shapes (beacon + campaign fetch) to learn.
        assert len(history[-1].rules) >= 2
        assert all(h.harm_outside == 0 for h in history)

    def test_first_iteration_reveals_the_cnc_shape(self):
        history = develop_policy("megad", duration=300)
        first = history[0]
        assert first.new_rule is not None
        assert first.new_rule.port == 4443


class TestContainmentTradeoff:
    @pytest.fixture(scope="class")
    def regimes(self):
        return run_all_regimes(duration=600)

    def test_unconstrained_maximizes_both(self, regimes):
        unconstrained = regimes["unconstrained"]
        assert unconstrained.harm_score > 100
        assert unconstrained.behaviour_score > 100
        assert unconstrained.inmates_blacklisted > 0

    def test_isolation_minimizes_both(self, regimes):
        isolation = regimes["isolation"]
        assert isolation.harm_score == 0
        assert isolation.families_active == 0

    def test_static_rules_lose_most_behaviour(self, regimes):
        botlab = regimes["botlab-static"]
        gq = regimes["gq"]
        assert botlab.families_active < gq.families_active
        assert botlab.behaviour_score < gq.behaviour_score / 2

    def test_gq_elicits_unconstrained_behaviour_at_zero_harm(self, regimes):
        gq = regimes["gq"]
        unconstrained = regimes["unconstrained"]
        assert gq.harm_score == 0
        assert gq.behaviour_score > unconstrained.behaviour_score * 0.8
        assert gq.families_active == 4
        assert gq.spam_harvested > 100


class TestScalability:
    def test_vlan_ceiling(self):
        demo = vlan_capacity_demo()
        assert demo["capacity"] == 4093
        assert demo["allocated"] == 4093

    def test_single_server_queues_grow_with_load(self):
        light = run_cs_load(inmates=3, cluster_size=1, duration=150)
        heavy = run_cs_load(inmates=12, cluster_size=1, duration=150)
        assert heavy.mean_queue_delay > light.mean_queue_delay

    def test_cluster_relieves_the_bottleneck(self):
        single = run_cs_load(inmates=12, cluster_size=1, duration=150)
        cluster = run_cs_load(inmates=12, cluster_size=4, duration=150)
        assert cluster.mean_queue_delay < single.mean_queue_delay
        # Sticky per-VLAN selection balances the population.
        assert len(cluster.load_balance) == 4
        assert min(cluster.load_balance) > 0

    def test_gateway_carries_paper_operating_point(self):
        result = run_gateway_load(subfarms=5, inmates_per=8,
                                  flow_interval=5.0, duration=120)
        assert result.flows_created > 5 * 8 * (120 / 5) * 0.5
        assert result.packets_relayed > result.flows_created


class TestRawIron:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_comparison(machines=4)

    def test_network_cycle_about_six_minutes(self, comparison):
        cycle = comparison["network-boot"].mean_cycle
        assert 300 <= cycle <= 420  # "around 6 minutes"

    def test_local_restore_about_ten_minutes(self, comparison):
        cycle = comparison["local-partition"].mean_cycle
        assert 500 <= cycle <= 700  # "around 10 minutes"

    def test_local_restore_wins_for_the_pool(self, comparison):
        assert (comparison["local-partition"].pool_turnaround
                < comparison["network-boot"].pool_turnaround)

    def test_every_machine_reimaged(self, comparison):
        for result in comparison.values():
            assert len(result.cycle_times) == 4
