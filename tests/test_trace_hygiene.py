"""§5.6 trace properties: export, anonymity, and table housekeeping."""

from __future__ import annotations

import pytest

from repro.core.policy import AllowAll
from repro.farm import Farm, FarmConfig
from repro.net.capture import read_pcap
from tests.test_containment_end_to_end import (
    EXTERNAL_WEB_IP,
    http_fetch_image,
    http_server,
)

pytestmark = pytest.mark.integration


def run_small_farm(seed=151):
    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("traced")
    web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
    http_server(web)
    image, _results = http_fetch_image()
    inmate = sub.create_inmate(image_factory=image, policy=AllowAll())
    farm.run(until=120)
    return farm, sub, inmate


class TestTwoProngedCapture:
    def test_export_produces_readable_pcaps(self, tmp_path):
        farm, sub, inmate = run_small_farm()
        paths = sub.export_traces(str(tmp_path))
        inmate_records = read_pcap(paths["inmate"])
        upstream_records = read_pcap(paths["upstream"])
        assert len(inmate_records) > 5
        assert len(upstream_records) > 3

    def test_inmate_side_trace_is_anonymous(self, tmp_path):
        """'Using these local addresses has the benefit of providing
        some degree of immediate anonymity in the packet traces' —
        the inmate's global address must never appear inmate-side."""
        farm, sub, inmate = run_small_farm()
        global_ip = sub.nat.global_for(inmate.vlan)
        for record in sub.router.trace.records:
            ip = record.ip
            if ip is None:
                continue
            assert ip.src != global_ip and ip.dst != global_ip, record

    def test_upstream_trace_shows_only_global_addresses(self):
        farm, sub, inmate = run_small_farm()
        internal = sub.nat.internal_for(inmate.vlan)
        for record in farm.gateway.upstream_trace.records:
            ip = record.ip
            if ip is None:
                continue
            assert ip.src != internal and ip.dst != internal, record


class TestFlowTableHousekeeping:
    def test_idle_flows_expire(self):
        farm, sub, inmate = run_small_farm()
        assert sub.router.active_flow_count() >= 1
        farm.run(until=600)  # everything long idle by now
        expired = sub.router.expire_idle_flows(max_idle=120.0)
        assert expired >= 1
        assert sub.router.active_flow_count() == 0

    def test_recent_flows_survive_expiry(self):
        farm, sub, inmate = run_small_farm()
        expired = sub.router.expire_idle_flows(max_idle=3600.0)
        assert expired == 0
