"""The gateway malice barrier: counting, quarantine, and policy.

The contract (docs/HARDENING.md): a ParseError raised anywhere inside
gateway or containment-server ingest is caught by the barrier — never
unwinding the event loop — counted per (vlan, protocol), quarantined
to a pcap, and answered per the configured ``malice_policy``.
"""

from __future__ import annotations

import struct

import pytest

from repro.farm import Farm, FarmConfig
from repro.gateway.barrier import (
    DEFAULT_QUARANTINE_MAX,
    MaliceBarrier,
    POLICIES,
)
from repro.net.errors import ParseError
from repro.sim.engine import Simulator

# An untagged frame claiming an IPv4 payload whose version/IHL byte
# lies — guaranteed ParseError from the ethernet/ipv4 parser chain.
GARBAGE = bytes(12) + b"\x08\x00" + b"\xff\xff\xff\xff"


def make_barrier(**kwargs) -> MaliceBarrier:
    return MaliceBarrier(Simulator(seed=1), "sub0", **kwargs)


class TestBarrierUnit:
    def test_record_counts_per_vlan_and_protocol(self):
        barrier = make_barrier()
        error = ParseError("dns", "loop", offset=12)
        barrier.record(error, vlan=7, data=b"x")
        barrier.record(error, vlan=7, data=b"y")
        barrier.record(ParseError("tcp", "bad offset"), vlan=9, data=b"z")
        assert barrier.parse_errors == 3
        assert barrier.counts[(7, "dns")] == 2
        assert barrier.counts[(9, "tcp")] == 1
        summary = barrier.summary()
        assert summary["by_vlan_protocol"]["vlan7/dns"] == 2
        assert summary["quarantined"] == 3

    def test_unattributable_errors_land_on_vlan_zero(self):
        barrier = make_barrier()
        barrier.record(ParseError("shim", "bad magic"), data=b"q")
        assert barrier.counts[(0, "shim")] == 1

    def test_quarantine_ring_rotates(self):
        barrier = make_barrier(quarantine_max_frames=3)
        for index in range(5):
            barrier.record(ParseError("udp", "short"), vlan=1,
                           data=bytes([index]))
        assert len(barrier.quarantine) == 3
        assert barrier.quarantine_rotated == 2
        # Oldest rotated out; newest retained.
        kept = [entry.frame.to_bytes() for entry in barrier.quarantine]
        assert kept == [b"\x02", b"\x03", b"\x04"]

    def test_default_quarantine_bound(self):
        assert make_barrier().quarantine_max_frames == DEFAULT_QUARANTINE_MAX

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            make_barrier(policy="shrug")
        assert "isolate" in POLICIES and "fail-stop" in POLICIES

    def test_fail_stop_latches_on_first_error(self):
        barrier = make_barrier(policy="fail-stop")
        assert not barrier.fail_stopped
        barrier.record(ParseError("ethernet", "runt"), vlan=2, data=b"r")
        assert barrier.fail_stopped
        barrier.note_failstop_drop()
        assert barrier.summary()["failstop_drops"] == 1

    def test_export_quarantine_writes_raw_bytes(self, tmp_path):
        barrier = make_barrier()
        barrier.record(ParseError("ethernet", "runt"), vlan=3,
                       data=GARBAGE)
        path = tmp_path / "quarantine.pcap"
        barrier.export_quarantine(str(path))
        blob = path.read_bytes()
        # Classic pcap magic, and the offending bytes verbatim —
        # malformed frames must round-trip to disk unmodified.
        assert struct.unpack("!I", blob[:4])[0] == 0xA1B2C3D4
        assert GARBAGE in blob


class TestRouterBarrier:
    def make_farm(self, **config):
        farm = Farm(FarmConfig(seed=3, **config))
        return farm, farm.create_subfarm("s")

    def test_ingest_wire_garbage_is_absorbed(self):
        farm, sub = self.make_farm()
        sub.router.ingest_wire(5, GARBAGE)
        farm.run(until=1.0)  # event loop survives
        barrier = sub.router.barrier
        assert barrier.counts[(5, "ipv4")] == 1
        assert len(barrier.quarantine) == 1

    def test_fail_stop_policy_stops_the_subfarm(self):
        farm, sub = self.make_farm(malice_policy="fail-stop")
        sub.router.ingest_wire(5, GARBAGE)
        assert sub.router.barrier.fail_stopped
        # Subsequent traffic — even well-formed — is dropped, not parsed.
        sub.router.ingest_wire(5, GARBAGE)
        assert sub.router.barrier.parse_errors == 1
        assert sub.router.barrier.failstop_drops == 1

    def test_config_controls_quarantine_bound(self):
        farm, sub = self.make_farm(quarantine_max_frames=2)
        for index in range(4):
            sub.router.ingest_wire(5, GARBAGE + bytes([index]))
        barrier = sub.router.barrier
        assert len(barrier.quarantine) == 2
        assert barrier.quarantine_rotated == 2

    def test_containment_server_shares_the_barrier(self):
        farm, sub = self.make_farm()
        assert sub.containment_server.barrier is sub.router.barrier

    def test_telemetry_binds_only_on_error(self):
        farm = Farm(FarmConfig(seed=3, telemetry=True))
        sub = farm.create_subfarm("s")
        clean = farm.telemetry_snapshot(include_traces=False)
        assert not any("barrier" in key for key in clean["counters"])
        sub.router.ingest_wire(5, GARBAGE)
        dirty = farm.telemetry_snapshot(include_traces=False)
        key = "barrier.parse_errors{protocol=ipv4,subfarm=s,vlan=5}"
        assert dirty["counters"][key] == 1.0


class TestConfigKnobs:
    def test_round_trip(self):
        config = FarmConfig(seed=1, malice_policy="fail-stop",
                            quarantine_max_frames=16)
        restored = FarmConfig.from_dict(config.to_dict())
        assert restored.malice_policy == "fail-stop"
        assert restored.quarantine_max_frames == 16

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            FarmConfig(seed=1, malice_policy="ignore")


class TestReporting:
    def test_malformed_traffic_section(self):
        from repro.reporting.report import ActivityReport, render_report

        farm = Farm(FarmConfig(seed=3))
        sub = farm.create_subfarm("s")
        sub.router.ingest_wire(5, GARBAGE)
        farm.run(until=1.0)
        rendered = render_report(ActivityReport.from_subfarms([sub]))
        assert "Malformed traffic" in rendered
        assert "vlan5/ipv4" in rendered

    def test_clean_run_has_no_malformed_section(self):
        from repro.reporting.report import ActivityReport, render_report

        farm = Farm(FarmConfig(seed=3))
        sub = farm.create_subfarm("s")
        farm.run(until=1.0)
        rendered = render_report(ActivityReport.from_subfarms([sub]))
        assert "Malformed traffic" not in rendered
