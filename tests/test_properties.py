"""Property-based tests (hypothesis) on core data structures."""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.core.shim import RequestShim, ResponseShim
from repro.core.verdicts import Verdict
from repro.gateway.flows import TokenBucket
from repro.net.addresses import IPv4Address, IPv4Network
from repro.net.dns import DnsMessage, DnsQuestion, DnsRecord, QTYPE_A
from repro.net.flow import FiveTuple
from repro.net.packet import (
    EthernetFrame,
    IPv4Packet,
    MacAddress,
    TCPSegment,
    UDPDatagram,
    internet_checksum,
)
from repro.net.tcp import seq_add, seq_lt, seq_sub

ips = st.integers(min_value=0, max_value=0xFFFFFFFF).map(IPv4Address)
ports = st.integers(min_value=0, max_value=65535)
vlans = st.integers(min_value=1, max_value=4094)
seqs = st.integers(min_value=0, max_value=0xFFFFFFFF)
payloads = st.binary(max_size=512)


@st.composite
def five_tuples(draw):
    return FiveTuple(draw(ips), draw(ports), draw(ips), draw(ports),
                     draw(st.sampled_from([6, 17])))


class TestAddressProperties:
    @given(ips)
    def test_string_round_trip(self, address):
        assert IPv4Address(str(address)) == address

    @given(ips)
    def test_bytes_round_trip(self, address):
        assert IPv4Address.from_bytes(address.to_bytes()) == address

    @given(ips, st.integers(min_value=0, max_value=32))
    def test_network_contains_its_base(self, address, prefix):
        network = IPv4Network(f"{address}/{prefix}")
        assert network.contains(IPv4Address(network.network))


class TestSequenceArithmetic:
    @given(seqs, st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_add_sub_inverse(self, a, b):
        assert seq_sub(seq_add(a, b), b) == a

    @given(seqs, st.integers(min_value=1, max_value=(1 << 31) - 1))
    def test_forward_distance_is_lt(self, a, delta):
        assert seq_lt(a, seq_add(a, delta))

    @given(seqs)
    def test_irreflexive(self, a):
        assert not seq_lt(a, a)


class TestPacketRoundTrips:
    @given(ports, ports, seqs, seqs,
           st.integers(min_value=0, max_value=0x3F), payloads)
    def test_tcp_segment(self, sport, dport, seq, ack, flags, payload):
        seg = TCPSegment(sport, dport, seq, ack, flags, payload=payload)
        src, dst = IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")
        parsed = TCPSegment.from_bytes(seg.to_bytes(src, dst))
        assert (parsed.sport, parsed.dport, parsed.seq, parsed.ack,
                parsed.flags, parsed.payload) == (
            sport, dport, seq, ack, flags, payload)

    @given(ports, ports, payloads)
    def test_udp_datagram(self, sport, dport, payload):
        dgram = UDPDatagram(sport, dport, payload)
        src, dst = IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")
        parsed = UDPDatagram.from_bytes(dgram.to_bytes(src, dst))
        assert (parsed.sport, parsed.dport, parsed.payload) == (
            sport, dport, payload)

    @given(ips, ips, ports, ports, payloads, vlans)
    def test_full_frame(self, src, dst, sport, dport, payload, vlan):
        frame = EthernetFrame(
            MacAddress("02:00:00:00:00:01"), MacAddress("02:00:00:00:00:02"),
            IPv4Packet(src, dst, UDPDatagram(sport, dport, payload)),
            vlan=vlan,
        )
        parsed = EthernetFrame.from_bytes(frame.to_bytes())
        assert parsed.vlan == vlan
        assert parsed.ip.src == src and parsed.ip.dst == dst
        assert parsed.ip.udp.payload == payload

    @given(payloads)
    def test_checksum_detects_single_bit_flips(self, data):
        if not data:
            return
        original = internet_checksum(data)
        flipped = bytearray(data)
        flipped[0] ^= 0x01
        # One's-complement sums catch any single-bit error.
        assert internet_checksum(bytes(flipped)) != original


class TestShimProperties:
    @settings(max_examples=50)
    @given(five_tuples(), vlans, ports)
    def test_request_round_trip(self, flow, vlan, nonce):
        shim = RequestShim(flow, vlan, nonce)
        parsed = RequestShim.from_bytes(shim.to_bytes(), proto=flow.proto)
        assert parsed.flow == flow
        assert parsed.vlan_id == vlan
        assert parsed.nonce_port == nonce

    @settings(max_examples=50)
    @given(five_tuples(),
           st.sampled_from([Verdict.FORWARD, Verdict.DROP, Verdict.REDIRECT,
                            Verdict.REFLECT, Verdict.REWRITE, Verdict.LIMIT]),
           st.text(max_size=20),
           st.text(max_size=60, alphabet=st.characters(
               blacklist_characters=";", blacklist_categories=("Cs",))))
    def test_response_round_trip(self, flow, verdict, policy, annotation):
        shim = ResponseShim(flow, verdict, policy, annotation)
        parsed = ResponseShim.from_bytes(shim.to_bytes(), proto=flow.proto)
        assert parsed.verdict == verdict
        assert parsed.flow == flow
        # The 32-byte tag truncates on a codepoint boundary: what comes
        # back is always a (possibly shortened) prefix of the original.
        assert policy.startswith(parsed.policy)
        assert len(parsed.policy.encode("utf-8")) <= 32
        assert parsed.annotation == annotation


class TestDnsProperties:
    names = st.lists(
        st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                min_size=1, max_size=20).filter(
                    lambda s: not s.startswith("-")),
        min_size=1, max_size=4,
    ).map(".".join)

    @given(st.integers(min_value=0, max_value=0xFFFF), names, ips)
    def test_answer_round_trip(self, txid, name, address):
        query = DnsMessage.query(txid, name)
        reply = query.reply([DnsRecord.a(name, address)])
        parsed = DnsMessage.from_bytes(reply.to_bytes())
        assert parsed.txid == txid
        assert parsed.question.name == name.lower()
        assert parsed.answers[0].address == address


class TestTokenBucketProperties:
    @settings(max_examples=50)
    @given(st.floats(min_value=10.0, max_value=1e6),
           st.lists(st.integers(min_value=1, max_value=10000),
                    min_size=1, max_size=50))
    def test_long_run_rate_never_exceeded(self, rate, sizes):
        bucket = TokenBucket(rate)
        now = 0.0
        last_release = 0.0
        total = 0
        for size in sizes:
            delay = bucket.delay_for(now, size)
            last_release = max(last_release, now + delay)
            total += size
        if last_release > 0:
            # Average release rate cannot beat the configured rate by
            # more than the initial burst allowance.
            assert total <= rate * last_release + bucket.burst + 1e-6

    @given(st.floats(max_value=0.0, allow_nan=False))
    def test_nonpositive_rate_rejected(self, rate):
        try:
            TokenBucket(rate)
        except ValueError:
            return
        raise AssertionError("nonpositive rate must raise")


class TestDslProperties:
    actions = st.sampled_from(
        ["forward", "drop", "rewrite", "reflect sink",
         "redirect 10.3.0.9:8080", "limit 5000"])
    directions = st.sampled_from(["", "inbound ", "outbound "])
    port_specs = st.tuples(
        st.integers(min_value=1, max_value=65535),
        st.sampled_from(["tcp", "udp"]),
    )

    @settings(max_examples=60)
    @given(st.lists(st.tuples(directions, port_specs, actions),
                    min_size=1, max_size=8),
           actions)
    def test_generated_programs_parse_and_decide(self, rules, default):
        from repro.core.dsl import DslError, DslPolicy, parse_program

        lines = [
            f"{direction}port {port}/{proto} -> {action}"
            for direction, (port, proto), action in rules
        ]
        lines.append(f"default -> {default}")
        program = "\n".join(lines)
        try:
            parsed_rules, parsed_default = parse_program(program)
        except DslError as exc:
            # Randomly generated rule lists may repeat a match; the
            # parser now rejects fully-shadowed rules by design.
            assert exc.reason == "shadowed-rule"
            assume(False)
        assert len(parsed_rules) == len(rules)
        # Every endpoint probe must produce a decision (or a
        # deliberate wait-for-content None) without raising.
        from repro.analysis.policy_testing import enumerate_surface

        policy = DslPolicy(program)
        surface = enumerate_surface(policy)
        assert len(surface.outcomes) + len(surface.undecided) > 0


class TestHardenedRoundTrips:
    """Serialize→parse round trips for the packet classes the hostile-
    input hardening pass touched (docs/HARDENING.md): what a peer
    emits, the hardened parser must still accept unchanged."""

    macs = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MacAddress)

    @given(st.sampled_from([1, 2]), macs, ips, macs, ips)
    def test_arp_round_trip(self, op, smac, sip, tmac, tip):
        from repro.net.arp import ArpMessage

        message = ArpMessage(op, smac, sip, tmac, tip)
        parsed = ArpMessage.from_bytes(message.to_bytes())
        assert (parsed.op, parsed.sender_mac, parsed.sender_ip,
                parsed.target_mac, parsed.target_ip) == (
            op, smac, sip, tmac, tip)

    @given(st.sampled_from([1, 2, 3, 4]),
           st.integers(min_value=0, max_value=0xFFFFFFFF),
           macs, ips, ips, ips,
           st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_dhcp_round_trip(self, kind, xid, chaddr, yiaddr, router,
                             dns, lease):
        from repro.services.dhcp import DhcpMessage

        message = DhcpMessage(kind, xid, chaddr, yiaddr, router, dns, lease)
        parsed = DhcpMessage.from_bytes(message.to_bytes())
        assert (parsed.kind, parsed.xid, parsed.chaddr, parsed.yiaddr,
                parsed.router, parsed.dns, parsed.lease) == (
            kind, xid, chaddr, yiaddr, router, dns, lease)

    @given(ips, ports,
           st.binary(max_size=64).filter(lambda b: b"\x00" not in b))
    def test_socks4_request_round_trip(self, address, port, user_id):
        from repro.net.socks import Socks4Request

        request = Socks4Request(address, port, user_id=user_id)
        wire = request.to_bytes()
        result = Socks4Request.parse(wire)
        assert result is not None
        parsed, consumed = result
        assert consumed == len(wire)
        assert (parsed.address, parsed.port, parsed.user_id) == (
            address, port, user_id)

    @given(st.integers(min_value=0, max_value=255), ports, ips)
    def test_socks4_reply_round_trip(self, code, port, address):
        from repro.net.socks import Socks4Reply

        reply = Socks4Reply(code, port, address)
        result = Socks4Reply.parse(reply.to_bytes())
        assert result is not None
        parsed, consumed = result
        assert consumed == 8
        assert (parsed.code, parsed.port, parsed.address) == (
            code, port, address)

    @settings(max_examples=40)
    @given(ips, ips, ports, ports, payloads,
           st.integers(min_value=1, max_value=8),
           st.lists(st.tuples(ips, ips), min_size=8, max_size=8))
    def test_gre_nesting_round_trip(self, src, dst, sport, dport,
                                    payload, depth, hops):
        from repro.net.gre import encapsulate, unwrap

        inner = IPv4Packet(src, dst, UDPDatagram(sport, dport, payload))
        packet = inner
        for outer_src, outer_dst in hops[:depth]:
            packet = encapsulate(packet, outer_src, outer_dst)
        parsed = IPv4Packet.from_bytes(packet.to_bytes())
        recovered = unwrap(parsed)
        assert recovered.src == src and recovered.dst == dst
        assert recovered.udp.payload == payload

    @given(st.integers(min_value=0, max_value=0xFFFF),
           st.integers(min_value=0, max_value=0xFFFF))
    def test_dns_mx_round_trip(self, txid, priority):
        reply = DnsMessage.query(txid, "victim.example").reply(
            [DnsRecord.mx("victim.example", "mx1.victim.example",
                          priority=priority)])
        parsed = DnsMessage.from_bytes(reply.to_bytes())
        answer = parsed.answers[0]
        assert answer.exchange == "mx1.victim.example"
        assert answer.priority == priority
