"""Robustness fuzzing: protocol engines fed adversarial bytes.

Everything facing inmate traffic parses attacker-controlled input;
none of it may crash, hang, or mis-frame.  Hypothesis drives random
byte streams (whole and chunked) through every engine.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.shim import ShimError, peek_length
from repro.net.dns import DnsMessage
from repro.net.errors import ParseError
from repro.net.ftp import FtpServerEngine
from repro.net.http import HttpParser
from repro.net.irc import IrcNetwork, IrcServerEngine
from repro.net.smtp import SmtpServerEngine, Strictness
from repro.net.socks import Socks4Reply, Socks4Request

junk = st.binary(max_size=300)
junk_chunks = st.lists(st.binary(max_size=60), max_size=10)


class TestEnginesSurviveGarbage:
    @settings(max_examples=60)
    @given(junk_chunks)
    def test_smtp_server(self, chunks):
        out = []
        engine = SmtpServerEngine(send=out.append,
                                  strictness=Strictness.LENIENT)
        for chunk in chunks:
            engine.feed(chunk)
        assert out, "greeting banner must always have been sent"

    @settings(max_examples=60)
    @given(junk_chunks)
    def test_smtp_server_strict(self, chunks):
        out = []
        engine = SmtpServerEngine(send=out.append,
                                  strictness=Strictness.STRICT)
        for chunk in chunks:
            engine.feed(chunk)

    @settings(max_examples=60)
    @given(junk_chunks)
    def test_http_request_parser(self, chunks):
        parser = HttpParser("request")
        for chunk in chunks:
            try:
                parser.feed(chunk)
            except ParseError:
                return  # malformed framing rejected loudly is fine
            # Any other exception (bare ValueError included) escapes
            # the taxonomy and fails the test.

    @settings(max_examples=60)
    @given(junk_chunks)
    def test_ftp_server(self, chunks):
        out = []
        engine = FtpServerEngine(send=out.append, accounts={"u": "p"},
                                 files={"f": b"x"})
        for chunk in chunks:
            engine.feed(chunk)
        assert out

    @settings(max_examples=60)
    @given(junk_chunks)
    def test_irc_server(self, chunks):
        network = IrcNetwork()
        out = []
        engine = IrcServerEngine(network, out.append)
        for chunk in chunks:
            engine.feed(chunk)

    @settings(max_examples=60)
    @given(junk)
    def test_dns_parser(self, data):
        try:
            DnsMessage.from_bytes(data)
        except ValueError:
            pass

    @settings(max_examples=60)
    @given(junk)
    def test_socks_parsers(self, data):
        try:
            Socks4Request.parse(data)
        except ValueError:
            pass
        Socks4Reply.parse(data)

    @settings(max_examples=60)
    @given(junk)
    def test_shim_peek(self, data):
        try:
            peek_length(data)
        except ShimError:
            pass


class TestFramingUnderFragmentation:
    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=7))
    def test_smtp_command_split_arbitrarily(self, chunk_size):
        out = []
        engine = SmtpServerEngine(send=out.append,
                                  on_message=lambda t: out.append(b"MSG"))
        wire = (b"HELO x\r\nMAIL FROM:<a@b.c>\r\nRCPT TO:<d@e.f>\r\n"
                b"DATA\r\nhello\r\n.\r\n")
        for offset in range(0, len(wire), chunk_size):
            engine.feed(wire[offset:offset + chunk_size])
        assert b"MSG" in out
        assert len(engine.transactions) == 1

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=7))
    def test_irc_registration_split_arbitrarily(self, chunk_size):
        network = IrcNetwork()
        out = []
        engine = IrcServerEngine(network, out.append)
        wire = b"NICK bot1\r\nUSER bot1 0 * :b\r\nJOIN #cmd\r\n"
        for offset in range(0, len(wire), chunk_size):
            engine.feed(wire[offset:offset + chunk_size])
        assert engine.registered
        assert "bot1" in network.channel("#cmd").members
