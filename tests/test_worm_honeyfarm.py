"""Worm honeyfarm: inbound capture, redirect containment, Table 1
measurement machinery."""

from __future__ import annotations

import pytest

from repro.experiments.worm_capture import run_worm_capture
from repro.malware.worm_table import (
    SLOW_INCUBATION_THRESHOLD,
    TABLE_1,
    distinct_families,
    slow_rows,
    vuln_ports_for,
)
from repro.malware.worms import exploit_stage, parse_exploit

pytestmark = pytest.mark.integration

KORGO_Q = TABLE_1[28]
WELCHIA = TABLE_1[5]


class TestWormTable:
    def test_table_has_66_rows(self):
        assert len(TABLE_1) == 66

    def test_family_roster_near_14(self):
        # "66 distinct worms belonging to 14 different malware
        # families" — our variant normalization yields 16 base
        # families; the paper's Symantec-era grouping merged two more
        # (not specified).  See EXPERIMENTS.md.
        families = distinct_families()
        assert 14 <= len(families) <= 16
        assert "W32.Korgo" in families       # all Korgo variants folded
        assert "W32.Blaster" in families     # Blaster.F folded in

    def test_slow_infection_classes(self):
        # "nine infection classes required more than three minutes" —
        # the table bolds 10 rows above 180 s (one at 180.8 s is
        # borderline three minutes).
        assert 9 <= len(slow_rows()) <= 10
        assert all(r.incubation > SLOW_INCUBATION_THRESHOLD
                   for r in slow_rows())

    def test_connection_extremes(self):
        conns = [row.conns for row in TABLE_1]
        assert min(conns) == 2      # Korgo-class
        assert max(conns) == 72     # BAT.Boohoo.Worm

    def test_vuln_ports_known_for_every_row(self):
        for row in TABLE_1:
            assert vuln_ports_for(row.label), row


class TestExploitProtocol:
    def test_stage_round_trip(self):
        wire = exploit_stage("W32.Korgo.Q", 1, 2, "a" * 32)
        family, stage, total, sample = parse_exploit(wire)
        assert (family, stage, total) == ("W32.Korgo.Q", 1, 2)
        assert sample == "a" * 32

    def test_garbage_rejected(self):
        assert parse_exploit(b"GET / HTTP/1.1\r\n") is None
        assert parse_exploit(b"GQX|mangled") is None


class TestWormCapture:
    def test_fast_worm_chain_infects_whole_farm(self):
        result = run_worm_capture(KORGO_Q, inmates=4, duration=900, seed=1)
        # wild infection + in-farm chain across the remaining inmates
        assert result.event_count == 4
        assert result.conns_per_infection == KORGO_Q.conns

    def test_incubation_tracks_paper_value(self):
        result = run_worm_capture(KORGO_Q, inmates=4, duration=900, seed=1)
        mean = result.mean_incubation
        assert mean is not None
        assert KORGO_Q.incubation * 0.5 < mean < KORGO_Q.incubation * 2.0

    def test_multi_connection_exploit_measured(self):
        result = run_worm_capture(WELCHIA, inmates=3, duration=900, seed=5)
        assert result.event_count >= 2
        assert result.conns_per_infection == WELCHIA.conns

    def test_no_propagation_escapes_upstream(self):
        """Containment invariant: exploit traffic never reaches the
        outside world (only harmless scan SYNs may exit, and with the
        redirect policy not even those do for successful attempts)."""
        from repro.farm import Farm  # imported for typing clarity only

        result = run_worm_capture(KORGO_Q, inmates=3, duration=600, seed=3)
        assert result.event_count >= 2
        # The redirect policy kept every completed propagation in-farm:
        # each in-farm infection's attacker is an in-farm address.
        in_farm_ips = {e.host_ip for e in result.events}
        for event in result.events[1:]:
            assert event.attacker_ip in in_farm_ips

    def test_farm_saturation_stops_chain(self):
        result = run_worm_capture(KORGO_Q, inmates=2, duration=600, seed=7)
        assert result.event_count == 2  # no fresh inmates after that
