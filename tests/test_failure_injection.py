"""Failure injection: the containment machinery under broken parts.

The fail-safe property matters more than the happy path: whenever a
component misbehaves — the containment server crashes mid-decision, a
shim is malformed, a policy raises — the flow must die contained, never
leak.
"""

from __future__ import annotations

import pytest

from repro.core.policy import AllowAll, ContainmentPolicy
from repro.farm import Farm, FarmConfig
from tests.test_containment_end_to_end import (
    EXTERNAL_WEB_IP,
    http_fetch_image,
    http_server,
)

pytestmark = pytest.mark.integration


class TestContainmentServerFailures:
    def test_cs_closing_before_verdict_drops_the_flow(self):
        """A containment server that dies (FIN) before answering must
        fail closed: the paper's machinery treats it as DROP."""

        class DyingPolicy(ContainmentPolicy):
            def decide(self, ctx):
                return None  # never decide; wait for content forever

            def decide_content(self, ctx, data):
                return None

        farm = Farm(FarmConfig(seed=91))
        sub = farm.create_subfarm("test")
        web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
        served = http_server(web)
        image, results = http_fetch_image()
        inmate = sub.create_inmate(image_factory=image,
                                   policy=DyingPolicy())
        farm.run(until=45)
        # Now kill every open containment connection server-side.
        for conn in list(sub.cs_host.tcp.connections()):
            if conn.local_port == sub.containment_server.tcp_port:
                conn.close()
        farm.run(until=120)
        assert served == [], "an undecided flow must never reach out"
        router_verdicts = [entry.verdict for entry in sub.router.flow_log]
        assert "DROP" in router_verdicts

    def test_cs_reset_before_verdict_kills_client_flow(self):
        class DyingPolicy(ContainmentPolicy):
            def decide(self, ctx):
                return None

            def decide_content(self, ctx, data):
                return None

        farm = Farm(FarmConfig(seed=92))
        sub = farm.create_subfarm("test")
        web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
        served = http_server(web)
        image, results = http_fetch_image()
        sub.create_inmate(image_factory=image, policy=DyingPolicy())
        farm.run(until=45)
        for conn in list(sub.cs_host.tcp.connections()):
            if conn.local_port == sub.containment_server.tcp_port:
                conn.abort()
        farm.run(until=120)
        assert served == []
        assert "RESET" in results or "FAIL" in results or results == []

    def test_policy_exception_does_not_leak(self):
        """A buggy policy raising mid-decision must not default-open."""

        class BuggyPolicy(ContainmentPolicy):
            def decide(self, ctx):
                raise RuntimeError("policy bug")

        farm = Farm(FarmConfig(seed=93))
        sub = farm.create_subfarm("test")
        web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
        served = http_server(web)
        image, results = http_fetch_image()
        sub.create_inmate(image_factory=image, policy=BuggyPolicy())
        try:
            farm.run(until=120)
        except RuntimeError:
            pass  # the simulator surfaces the bug loudly — acceptable
        assert served == [], "a crashing policy must never forward"


class TestInmateLifecycleFailures:
    def test_revert_mid_flow_closes_state(self):
        farm = Farm(FarmConfig(seed=94))
        sub = farm.create_subfarm("test")
        web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
        http_server(web)
        image, results = http_fetch_image(delay=5.0)
        inmate = sub.create_inmate(image_factory=image, policy=AllowAll())
        farm.run(until=40)
        active_before = sub.router.active_flow_count()
        # Through the controller, as the architecture routes it — the
        # gateway clears per-inmate flow state on the way.
        farm.controller.execute("revert", inmate.vlan)
        farm.run(until=45)
        from repro.gateway.flows import FlowPhase

        for record in sub.router.flows():
            if record.vlan == inmate.vlan:
                assert record.phase in (FlowPhase.CLOSED, FlowPhase.DROPPED,
                                        FlowPhase.REFUSED), record
        assert active_before >= 0  # documented: flows existed or not

    def test_reverted_inmate_comes_back_functional(self):
        farm = Farm(FarmConfig(seed=95))
        sub = farm.create_subfarm("test")
        web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
        served = http_server(web)
        image, results = http_fetch_image()
        inmate = sub.create_inmate(image_factory=image, policy=AllowAll())
        farm.run(until=60)
        first_count = len(served)
        assert first_count == 1
        inmate.revert()
        farm.run(until=300)
        # The fresh generation boots, re-DHCPs, and fetches again.
        assert len(served) == 2


class TestSafetyNetOrdering:
    def test_safety_filter_fires_before_policy(self):
        """Refused flows never reach the containment server at all."""
        from repro.net.addresses import IPv4Address
        from repro.services.dhcp import DhcpClient

        farm = Farm(FarmConfig(
            seed=96,
            safety_max_flows_per_window=3,
            safety_max_flows_per_destination=3,
            safety_window=300.0,
        ))
        sub = farm.create_subfarm("test")
        web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
        http_server(web)

        def image(host):
            def burst(configured_host):
                for _ in range(10):
                    configured_host.tcp.connect(
                        IPv4Address(EXTERNAL_WEB_IP), 80)

            DhcpClient(host, on_configured=burst).start()

        sub.create_inmate(image_factory=image, policy=AllowAll())
        farm.run(until=60)
        verdicts = sum(sub.containment_server.verdict_counts.values())
        assert verdicts <= 3
        assert sub.safety.flows_refused == 7
