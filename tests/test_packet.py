"""Wire-format round-trips and header semantics."""

from __future__ import annotations

import pytest

from repro.net.addresses import IPv4Address, IPv4Network, MacAddress, MacAllocator
from repro.net.packet import (
    ACK,
    EthernetFrame,
    IPv4Packet,
    PSH,
    SYN,
    TCPSegment,
    UDPDatagram,
    internet_checksum,
)


class TestAddresses:
    def test_ipv4_string_round_trip(self):
        for text in ("0.0.0.0", "10.0.0.1", "192.150.187.12", "255.255.255.255"):
            assert str(IPv4Address(text)) == text

    def test_ipv4_rejects_malformed(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                IPv4Address(bad)

    def test_rfc1918_detection(self):
        assert IPv4Address("10.1.2.3").is_rfc1918()
        assert IPv4Address("172.16.0.1").is_rfc1918()
        assert IPv4Address("172.31.255.255").is_rfc1918()
        assert IPv4Address("192.168.99.1").is_rfc1918()
        assert not IPv4Address("172.32.0.1").is_rfc1918()
        assert not IPv4Address("8.8.8.8").is_rfc1918()

    def test_network_contains_and_hosts(self):
        net = IPv4Network("192.0.2.0/24")
        assert net.contains(IPv4Address("192.0.2.200"))
        assert not net.contains(IPv4Address("192.0.3.1"))
        hosts = list(net.hosts())
        assert len(hosts) == 254
        assert str(hosts[0]) == "192.0.2.1"
        assert str(hosts[-1]) == "192.0.2.254"

    def test_address_arithmetic(self):
        a = IPv4Address("10.0.0.1")
        assert str(a + 5) == "10.0.0.6"
        assert (a + 5) - a == 5

    def test_mac_round_trip_and_broadcast(self):
        mac = MacAddress("02:00:00:aa:bb:cc")
        assert MacAddress.from_bytes(mac.to_bytes()) == mac
        assert MacAddress.broadcast().is_broadcast
        assert not mac.is_broadcast

    def test_mac_allocator_unique(self):
        alloc = MacAllocator()
        macs = {alloc.allocate() for _ in range(100)}
        assert len(macs) == 100


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example from RFC 1071 §3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")


class TestTcpSegment:
    def test_round_trip(self):
        src, dst = IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")
        seg = TCPSegment(1234, 80, seq=1000, ack=2000, flags=SYN | ACK,
                         payload=b"hello")
        parsed = TCPSegment.from_bytes(seg.to_bytes(src, dst))
        assert (parsed.sport, parsed.dport) == (1234, 80)
        assert (parsed.seq, parsed.ack) == (1000, 2000)
        assert parsed.syn and parsed.has_ack and not parsed.fin
        assert parsed.payload == b"hello"

    def test_seq_len_counts_syn_and_fin(self):
        assert TCPSegment(1, 2, flags=SYN).seq_len == 1
        assert TCPSegment(1, 2, flags=ACK, payload=b"abc").seq_len == 3
        assert TCPSegment(1, 2, flags=ACK | PSH, payload=b"ab").seq_len == 2


class TestUdpDatagram:
    def test_round_trip(self):
        src, dst = IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")
        dgram = UDPDatagram(5353, 53, b"query")
        parsed = UDPDatagram.from_bytes(dgram.to_bytes(src, dst))
        assert (parsed.sport, parsed.dport, parsed.payload) == (5353, 53, b"query")


class TestIPv4Packet:
    def test_round_trip_tcp(self):
        packet = IPv4Packet(
            IPv4Address("192.0.2.1"), IPv4Address("198.51.100.2"),
            TCPSegment(4000, 25, seq=7, flags=SYN),
        )
        parsed = IPv4Packet.from_bytes(packet.to_bytes())
        assert parsed.src == packet.src and parsed.dst == packet.dst
        assert parsed.tcp.dport == 25 and parsed.tcp.syn

    def test_round_trip_udp(self):
        packet = IPv4Packet(
            IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
            UDPDatagram(53, 53, b"x" * 100),
        )
        parsed = IPv4Packet.from_bytes(packet.to_bytes())
        assert parsed.udp.payload == b"x" * 100

    def test_copy_is_deep(self):
        packet = IPv4Packet(
            IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
            TCPSegment(1, 2, payload=b"data"),
        )
        clone = packet.copy()
        clone.tcp.seq = 999
        clone.src = IPv4Address("1.1.1.1")
        assert packet.tcp.seq == 0
        assert str(packet.src) == "10.0.0.1"


class TestEthernetFrame:
    def test_untagged_round_trip(self):
        frame = EthernetFrame(
            MacAddress("02:00:00:00:00:01"), MacAddress("02:00:00:00:00:02"),
            IPv4Packet(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
                       UDPDatagram(1, 2, b"p")),
        )
        parsed = EthernetFrame.from_bytes(frame.to_bytes())
        assert parsed.vlan is None
        assert parsed.ip.udp.payload == b"p"

    def test_vlan_tag_survives_round_trip(self):
        frame = EthernetFrame(
            MacAddress("02:00:00:00:00:01"), MacAddress.broadcast(),
            IPv4Packet(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
                       UDPDatagram(1, 2, b"p")),
            vlan=1234,
        )
        parsed = EthernetFrame.from_bytes(frame.to_bytes())
        assert parsed.vlan == 1234

    def test_vlan_range_enforced(self):
        src = MacAddress("02:00:00:00:00:01")
        with pytest.raises(ValueError):
            EthernetFrame(src, src, b"", vlan=4095)
        with pytest.raises(ValueError):
            EthernetFrame(src, src, b"", vlan=0)
