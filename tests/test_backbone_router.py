"""The simulated Internet backbone: LPM forwarding, TTL, proxy ARP."""

from __future__ import annotations

from repro.net.addresses import IPv4Address, IPv4Network
from repro.net.host import Host
from repro.net.packet import IPv4Packet, UDPDatagram
from repro.net.router import Router
from repro.sim.engine import Simulator


def backbone_with_hosts(count=2, seed=5):
    sim = Simulator(seed=seed)
    backbone = Router(sim)
    hosts = []
    for i in range(count):
        host = Host(sim, f"x{i}", ip=IPv4Address(f"203.0.113.{i + 10}"))
        backbone.attach_host(host, latency=0.001)
        hosts.append(host)
    return sim, backbone, hosts


class TestBackbone:
    def test_hosts_on_different_ports_communicate(self):
        sim, backbone, (a, b) = backbone_with_hosts()
        received = []
        b.udp.bind(9, lambda h, p, d: received.append(d.payload))
        a.udp.sendto(b"across the backbone", b.ip, 9)
        sim.run(until=1.0)
        assert received == [b"across the backbone"]
        assert backbone.packets_forwarded >= 1

    def test_longest_prefix_match_wins(self):
        sim, backbone, (a, b) = backbone_with_hosts()
        # A covering /24 pointing at a's port, plus b's /32 (installed
        # by attach_host).  Traffic for b must follow the /32.
        backbone.add_route(IPv4Network("203.0.113.0/24"),
                           backbone.ports[0])
        received = []
        b.udp.bind(9, lambda h, p, d: received.append(d.payload))
        a.udp.sendto(b"lpm", b.ip, 9)
        sim.run(until=1.0)
        assert received == [b"lpm"]

    def test_unroutable_packets_counted(self):
        sim, backbone, (a, b) = backbone_with_hosts()
        a.udp.sendto(b"void", IPv4Address("192.0.2.1"), 9)
        sim.run(until=1.0)
        assert backbone.packets_dropped >= 1

    def test_ttl_decrements(self):
        sim, backbone, (a, b) = backbone_with_hosts()
        seen_ttls = []

        original = b.receive_frame

        def spy(frame, port):
            payload = frame.payload
            if isinstance(payload, IPv4Packet):
                seen_ttls.append(payload.ttl)
            original(frame, port)

        b.receive_frame = spy
        a.udp.sendto(b"ttl", b.ip, 9)
        sim.run(until=1.0)
        assert seen_ttls and seen_ttls[0] == 63  # 64 minus one hop

    def test_expired_ttl_dropped(self):
        sim, backbone, (a, b) = backbone_with_hosts()
        packet = IPv4Packet(a.ip, b.ip, UDPDatagram(1, 9, b"dead"), ttl=1)
        received = []
        b.udp.bind(9, lambda h, p, d: received.append(d.payload))
        a.send_ip(packet)
        sim.run(until=1.0)
        assert received == []
        assert backbone.packets_dropped >= 1

    def test_proxy_arp_answers_for_anyone(self):
        sim, backbone, (a, b) = backbone_with_hosts()
        # a ARPs for its gateway (an address nobody owns): the router
        # must answer with its own MAC so a can send off-link.
        a.udp.sendto(b"x", IPv4Address("198.51.100.99"), 9)
        sim.run(until=1.0)
        assert a.gateway_ip in a.arp_cache_snapshot()
        assert a.arp_cache_snapshot()[a.gateway_ip] == backbone.mac
