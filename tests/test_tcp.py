"""TCP state machine tests: handshake, data, teardown, resets."""

from __future__ import annotations

import pytest

from repro.net.tcp import TcpState, seq_add, seq_lt, seq_sub
from tests.helpers import lan


def echo_server(host, port=7):
    """Install an echo listener; returns the list of accepted conns."""
    accepted = []

    def on_accept(conn):
        accepted.append(conn)
        conn.on_data = lambda c, data: c.send(data)

    host.tcp.listen(port, on_accept)
    return accepted


class TestHandshake:
    def test_three_way_handshake_establishes_both_sides(self):
        sim, _switch, (a, b) = lan()
        accepted = echo_server(b)
        conn = a.tcp.connect(b.ip, 7)
        sim.run(until=1.0)
        assert conn.state == TcpState.ESTABLISHED
        assert len(accepted) == 1
        assert accepted[0].state == TcpState.ESTABLISHED

    def test_connect_to_closed_port_fails_with_rst(self):
        sim, _switch, (a, b) = lan()
        conn = a.tcp.connect(b.ip, 999)
        failures = []
        conn.on_fail = failures.append
        sim.run(until=1.0)
        assert conn.state == TcpState.CLOSED
        assert failures == [conn]

    def test_isns_are_random_but_deterministic_per_seed(self):
        sim1, _s1, (a1, b1) = lan(seed=3)
        sim2, _s2, (a2, b2) = lan(seed=3)
        echo_server(b1)
        echo_server(b2)
        c1 = a1.tcp.connect(b1.ip, 7)
        c2 = a2.tcp.connect(b2.ip, 7)
        sim1.run(until=1.0)
        sim2.run(until=1.0)
        assert c1.iss == c2.iss

    def test_established_callback_fires_once(self):
        sim, _switch, (a, b) = lan()
        echo_server(b)
        conn = a.tcp.connect(b.ip, 7)
        established = []
        conn.on_established = established.append
        sim.run(until=1.0)
        assert established == [conn]


class TestDataTransfer:
    def test_echo_round_trip(self):
        sim, _switch, (a, b) = lan()
        echo_server(b)
        conn = a.tcp.connect(b.ip, 7)
        received = []
        conn.on_data = lambda c, d: received.append(d)
        conn.on_established = lambda c: c.send(b"hello world")
        sim.run(until=1.0)
        assert b"".join(received) == b"hello world"

    def test_large_transfer_is_segmented_and_reassembled(self):
        sim, _switch, (a, b) = lan()
        payload = bytes(range(256)) * 64  # 16 KiB, > 10 segments
        received = []

        def on_accept(conn):
            conn.on_data = lambda c, d: received.append(d)

        b.tcp.listen(9, on_accept)
        conn = a.tcp.connect(b.ip, 9)
        conn.on_established = lambda c: c.send(payload)
        sim.run(until=2.0)
        assert b"".join(received) == payload

    def test_send_before_established_is_queued(self):
        sim, _switch, (a, b) = lan()
        received = []

        def on_accept(conn):
            conn.on_data = lambda c, d: received.append(d)

        b.tcp.listen(9, on_accept)
        conn = a.tcp.connect(b.ip, 9)
        conn.send(b"early bytes")
        sim.run(until=1.0)
        assert b"".join(received) == b"early bytes"

    def test_bidirectional_simultaneous_data(self):
        sim, _switch, (a, b) = lan()
        got_a, got_b = [], []

        def on_accept(conn):
            conn.on_data = lambda c, d: got_b.append(d)
            conn.on_established = lambda c: c.send(b"from-b")
            conn.send(b"b-early")

        b.tcp.listen(9, on_accept)
        conn = a.tcp.connect(b.ip, 9)
        conn.on_data = lambda c, d: got_a.append(d)
        conn.on_established = lambda c: c.send(b"from-a")
        sim.run(until=1.0)
        assert b"".join(got_b) == b"from-a"
        assert b"".join(got_a) == b"b-earlyfrom-b"


class TestTeardown:
    def test_orderly_close_reaches_closed_on_both_sides(self):
        sim, _switch, (a, b) = lan()
        remote_closed = []
        server_conns = []

        def on_accept(c):
            server_conns.append(c)

            def server_remote_close(conn):
                remote_closed.append(conn)
                conn.close()

            c.on_remote_close = server_remote_close

        b.tcp.listen(7, on_accept)
        conn = a.tcp.connect(b.ip, 7)
        conn.on_established = lambda c: c.close()
        sim.run(until=5.0)
        assert remote_closed
        assert server_conns[0].fully_closed
        assert conn.fully_closed

    def test_data_then_close_delivers_all_bytes(self):
        sim, _switch, (a, b) = lan()
        received, closes = [], []

        def on_accept(conn):
            conn.on_data = lambda c, d: received.append(d)
            conn.on_remote_close = closes.append

        b.tcp.listen(9, on_accept)
        conn = a.tcp.connect(b.ip, 9)

        def run(c):
            c.send(b"final payload")
            c.close()

        conn.on_established = run
        sim.run(until=2.0)
        assert b"".join(received) == b"final payload"
        assert len(closes) == 1

    def test_abort_sends_rst(self):
        sim, _switch, (a, b) = lan()
        server_conns = echo_server(b)
        resets = []
        conn = a.tcp.connect(b.ip, 7)
        conn.on_established = lambda c: None
        sim.run(until=0.5)
        server_conns[0].on_reset = resets.append
        conn.abort()
        sim.run(until=1.0)
        assert resets == [server_conns[0]]
        assert conn.state == TcpState.CLOSED

    def test_send_after_close_raises(self):
        sim, _switch, (a, b) = lan()
        echo_server(b)
        conn = a.tcp.connect(b.ip, 7)
        sim.run(until=0.5)
        conn.close()
        with pytest.raises(RuntimeError):
            conn.send(b"too late")


class TestSequenceArithmetic:
    def test_wraparound_add(self):
        assert seq_add(0xFFFFFFFF, 1) == 0
        assert seq_add(0xFFFFFFF0, 0x20) == 0x10

    def test_wraparound_sub(self):
        assert seq_sub(0, 1) == 0xFFFFFFFF
        assert seq_sub(0x10, 0xFFFFFFF0) == 0x20

    def test_modular_less_than(self):
        assert seq_lt(0xFFFFFFF0, 0x10)
        assert not seq_lt(0x10, 0xFFFFFFF0)
        assert not seq_lt(5, 5)
