"""Flight-recorder journal: recording semantics, causal provenance,
exporters, the operator CLI, and farm-level determinism.

The acceptance bar for the audit plane (docs/OBSERVABILITY.md):

* recording is bounded and causally parented (flow first, VLAN
  fallback, ``ROOT`` to start a fresh chain);
* a fixed seed replays to a byte-identical journal, so ``why <flow>``
  output is reproducible across runs;
* journaling off leaves a farm run's determinism digest untouched —
  the journal observes, it never perturbs.
"""

from __future__ import annotations

import json

import pytest

from repro.farm import FarmConfig
from repro.obs import __main__ as obs_cli
from repro.obs.export import render_chrome_trace, render_jsonl
from repro.obs.journal import (
    JOURNAL_SCHEMA,
    NULL_JOURNAL,
    Journal,
    ROOT,
    journal_digest,
)
from repro.obs.provenance import (
    chain_for,
    deepest_chains,
    event_counts,
    flows_in,
    render_why,
    resolve_flow,
)
from repro.parallel.tasks import streaming_farm_shard
from repro.reporting.report import ActivityReport, render_report

pytestmark = pytest.mark.obs


def make_journal(**kwargs) -> Journal:
    clock = [0.0]
    journal = Journal(clock=lambda: clock[0], **kwargs)
    journal.tick = lambda dt=1.0: clock.__setitem__(0, clock[0] + dt)
    return journal


class TestRecording:
    def test_auto_parent_prefers_flow_over_vlan(self):
        journal = make_journal()
        a = journal.record("flow.created", flow="f1", vlan=1,
                           parent=ROOT)
        journal.record("trigger.fired", vlan=1)
        b = journal.record("verdict.issued", flow="f1", vlan=1)
        assert a.parent is None
        assert b.parent == a.seq

    def test_vlan_fallback_when_flow_unknown(self):
        journal = make_journal()
        fired = journal.record("trigger.fired", vlan=7)
        lifecycle = journal.record("lifecycle", flow="new-flow", vlan=7)
        assert lifecycle.parent == fired.seq

    def test_root_sentinel_suppresses_auto_parenting(self):
        journal = make_journal()
        journal.record("barrier.quarantine", vlan=3)
        fresh = journal.record("flow.created", flow="f2", vlan=3,
                               parent=ROOT)
        assert fresh.parent is None

    def test_bounded_eviction_is_counted(self):
        journal = make_journal(capacity=3)
        for index in range(5):
            journal.record("lifecycle", flow=f"f{index}")
        assert len(journal) == 3
        assert journal.evicted == 2
        assert journal.recorded == 5
        snap = journal.snapshot()
        assert [event["flow"] for event in snap["events"]] == \
            ["f2", "f3", "f4"]

    def test_flow_alias_binding(self):
        journal = make_journal()
        journal.bind_flow("vlan4/tcp 10.0.0.2:1234", "gold/vlan4/mux7")
        assert journal.flow_for("vlan4/tcp 10.0.0.2:1234") == \
            "gold/vlan4/mux7"
        assert journal.flow_for("unknown") is None

    def test_null_journal_is_inert(self):
        assert NULL_JOURNAL.enabled is False
        assert NULL_JOURNAL.record("verdict.issued", flow="f") is None
        assert NULL_JOURNAL.events() == []
        assert NULL_JOURNAL.snapshot()["enabled"] is False

    def test_sample_rings_bounded(self):
        journal = make_journal(ring_capacity=2)
        for value in range(4):
            journal.sample("gw.flows", value)
            journal.tick()
        ring = journal.snapshot()["rings"]["gw.flows"]
        assert ring["dropped"] == 2
        assert [pair[1] for pair in ring["samples"]] == [2.0, 3.0]


class TestProvenance:
    def events(self):
        journal = make_journal()
        journal.record("flow.created", flow="f1", vlan=1, parent=ROOT)
        journal.tick()
        journal.record("verdict.issued", flow="f1", vlan=1,
                       verdict="allow")
        journal.tick()
        journal.record("verdict.applied", flow="f1", vlan=1)
        journal.record("flow.created", flow="f2", vlan=2, parent=ROOT)
        return journal.snapshot()["events"]

    def test_resolve_flow_substring_and_ambiguity(self):
        events = self.events()
        assert resolve_flow(events, "f1") == "f1"
        with pytest.raises(ValueError, match="ambiguous"):
            resolve_flow(events, "f")
        with pytest.raises(ValueError, match="no journaled flow"):
            resolve_flow(events, "missing")

    def test_chain_and_counts(self):
        events = self.events()
        chain = chain_for(events, "f1")
        assert [event["kind"] for event in chain] == \
            ["flow.created", "verdict.issued", "verdict.applied"]
        assert event_counts(events) == {
            "flow.created": 2, "verdict.applied": 1,
            "verdict.issued": 1}
        assert flows_in(events) == ["f1", "f2"]

    def test_deepest_chains_rank_by_depth(self):
        events = self.events()
        chains = deepest_chains(events, n=2)
        assert chains[0][0] == 3
        assert [event["kind"] for event in chains[0][1]] == \
            ["flow.created", "verdict.issued", "verdict.applied"]

    def test_render_why_shows_indented_tree(self):
        text = render_why(self.events(), "f1")
        assert text.startswith("why f1")
        assert "verdict.issued" in text
        assert "(3 events)" in text


class TestExporters:
    def snapshot(self):
        journal = make_journal()
        journal.record("flow.created", flow="f1", vlan=1, parent=ROOT)
        journal.sample("gw.flows", 2)
        return journal.snapshot()

    def test_jsonl_round_trips(self):
        lines = render_jsonl(self.snapshot()).splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == JOURNAL_SCHEMA
        event = json.loads(lines[1])
        assert event["kind"] == "flow.created"
        ring = json.loads(lines[2])
        assert ring["ring"] == "gw.flows"

    def test_chrome_trace_emits_instants(self):
        doc = json.loads(render_chrome_trace(
            journal_snap=self.snapshot()))
        instants = [event for event in doc["traceEvents"]
                    if event["ph"] == "i"]
        assert instants and instants[0]["name"] == "flow.created"
        assert instants[0]["tid"] == "vlan1"


class TestFarmDeterminism:
    @pytest.fixture(scope="class")
    def shard_runs(self):
        params = dict(subfarms=1, inmates=2, rounds=6, duration=60.0)
        return {
            "off": streaming_farm_shard(3, journal=False, **params),
            "on": streaming_farm_shard(3, journal=True, **params),
            "replay": streaming_farm_shard(3, journal=True, **params),
        }

    def test_journal_never_perturbs_the_run(self, shard_runs):
        assert shard_runs["on"]["digest"] == shard_runs["off"]["digest"]
        assert "journal" not in shard_runs["off"]

    def test_same_seed_same_journal(self, shard_runs):
        assert shard_runs["on"]["journal_digest"] == \
            shard_runs["replay"]["journal_digest"]

    def test_why_is_reproducible(self, shard_runs):
        events = shard_runs["on"]["journal"]["events"]
        replay = shard_runs["replay"]["journal"]["events"]
        flow = flows_in(events)[0]
        assert render_why(events, flow) == render_why(replay, flow)
        assert "flow.created" in render_why(events, flow)

    def test_farm_config_round_trips_journal_knobs(self):
        config = FarmConfig(seed=5, journal=True, journal_capacity=128,
                            journal_sample_interval=15.0)
        clone = FarmConfig.from_dict(config.to_dict())
        assert clone.journal is True
        assert clone.journal_capacity == 128
        assert clone.journal_sample_interval == 15.0


class TestDecisionAuditSection:
    def snapshot(self):
        journal = make_journal()
        journal.record("flow.created", flow="f1", vlan=1, parent=ROOT)
        journal.record("verdict.issued", flow="f1", vlan=1,
                       verdict="allow")
        journal.record("barrier.quarantine", vlan=1, protocol="eth",
                       reason="runt frame", frame_index=0)
        return journal.snapshot()

    def test_render_report_includes_audit(self):
        report = ActivityReport()
        report.subfarms["sf"] = {}
        report.attach_journal(self.snapshot())
        text = render_report(report)
        assert "Decision audit" in text
        assert "barrier.quarantine" in text
        assert "frame #0" in text

    def test_no_journal_no_audit_section(self):
        report = ActivityReport()
        report.subfarms["sf"] = {}
        assert "Decision audit" not in render_report(report)


class TestCli:
    @pytest.fixture(scope="class")
    def journal_file(self, tmp_path_factory):
        params = dict(subfarms=1, inmates=2, rounds=6, duration=60.0)
        shard = streaming_farm_shard(3, journal=True, **params)
        path = tmp_path_factory.mktemp("obs") / "journal.json"
        path.write_text(json.dumps(shard["journal"]))
        return str(path)

    def test_snapshot_jsonl(self, journal_file, capsys):
        assert obs_cli.main(["snapshot", "--journal", journal_file,
                             "--format", "jsonl"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert json.loads(lines[0])["schema"] == JOURNAL_SCHEMA

    def test_grep_exit_codes(self, journal_file, capsys):
        assert obs_cli.main(["grep", "--journal", journal_file,
                             "flow.created"]) == 0
        assert capsys.readouterr().out.strip()
        assert obs_cli.main(["grep", "--journal", journal_file,
                             "no-such-kind"]) == 1

    def test_why_substring_resolution(self, journal_file, capsys):
        events = json.loads(open(journal_file).read())["events"]
        flow = flows_in(events)[0]
        assert obs_cli.main(["why", "--journal", journal_file,
                             flow]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"why {flow}")
        # Unknown flow or event ids exit 2 with a friendly listing of
        # known flows, never a bare traceback.
        assert obs_cli.main(["why", "--journal", journal_file,
                             "definitely-missing"]) == 2
        err = capsys.readouterr().err
        assert "no journaled flow matches" in err
        assert "known flows" in err
        assert obs_cli.main(["why", "--journal", journal_file,
                             "seq:999999"]) == 2
        assert "no such event" in capsys.readouterr().err
        assert obs_cli.main(["why", "--journal", journal_file,
                             f"seq:{events[0]['seq']}"]) == 0
        assert capsys.readouterr().out.startswith("why event")

    def test_diff_identical_and_differing(self, journal_file,
                                          tmp_path, capsys):
        other = tmp_path / "other.json"
        doc = json.loads(open(journal_file).read())
        other.write_text(json.dumps(doc))
        assert obs_cli.main(["diff", journal_file, str(other)]) == 0
        assert "identical" in capsys.readouterr().out
        doc["events"] = doc["events"][:1]
        other.write_text(json.dumps(doc))
        assert obs_cli.main(["diff", journal_file, str(other)]) == 1
        assert "events[" in capsys.readouterr().out
