"""The flagship workflow: spambots under family containment policies.

Builds the full deployment — external world with victim MXes and C&C
servers, a subfarm with catch-all and SMTP sinks, auto-infection — and
checks the paper's core claims: the C&C lifeline stays open, every
spam message lands in the sink, and nothing harmful escapes.
"""

from __future__ import annotations

import pytest

from repro.farm import Farm, FarmConfig
from repro.inmates.images import autoinfect_image
from repro.malware.corpus import Sample
from repro.policies.spambot import GrumPolicy, RustockPolicy, MegadPolicy
from repro.world.builder import ExternalWorld

pytestmark = pytest.mark.integration


def build_spam_farm(family: str, policy_cls, seed: int = 42,
                    send_interval: float = 1.0):
    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("botfarm")
    world = ExternalWorld(farm)
    world.add_standard_victims(domains=3, mailboxes_per_domain=30)

    campaign = world.default_campaign(family, batch_size=10,
                                      send_interval=send_interval)
    if family == "rustock":
        cnc = world.add_http_cnc(family, "rustock-cc.example", campaign,
                                 port=443, path_prefix="/mod/")
        # Beacon endpoint on port 80 of the same C&C host.
        world.add_http_cnc(family + "-beacon", "rustock-cc.example",
                           campaign, port=80, path_prefix="/stat",
                           on_host=cnc.host)
    elif family == "megad":
        cnc = world.add_megad_cnc(campaign=campaign)
    else:
        cnc = world.add_http_cnc(family, f"{family}-cc.example", campaign,
                                 path_prefix=f"/{family}/")

    sub.add_catchall_sink()
    sub.add_smtp_sink()
    policy = policy_cls()
    sample = Sample(family)
    inmate = sub.create_inmate(image_factory=autoinfect_image(),
                               policy=policy)
    policy.set_sample(inmate.vlan, inmate.vlan, sample)
    return farm, sub, world, cnc, inmate


class TestGrumWorkflow:
    def test_grum_end_to_end(self):
        farm, sub, world, cnc, inmate = build_spam_farm("grum", GrumPolicy)
        farm.run(until=600)

        specimen = getattr(inmate.host, "specimen", None)
        assert specimen is not None, "auto-infection must execute the sample"
        assert specimen.family == "grum"

        # C&C lifeline open: the real C&C server answered fetches.
        assert len(cnc.requests_served) >= 1
        assert specimen.stats.get("cnc_fetches", 0) >= 1

        # The bot spammed...
        assert specimen.stats.get("smtp_sessions", 0) > 10
        # ...but not a single message reached a victim MX.
        assert world.total_spam_delivered() == 0
        # All of it sits in the SMTP sink (lenient engine handles
        # Grum's repeated HELOs and missing colons).
        sink = sub.sinks["smtp_sink"]
        assert sink.data_transfers > 10
        assert all("@" in t.mail_from for t in sink.messages)

    def test_grum_verdict_mix_matches_figure7(self):
        farm, sub, world, cnc, inmate = build_spam_farm("grum", GrumPolicy)
        farm.run(until=600)
        counts = sub.containment_server.verdict_counts
        assert counts.get("FORWARD", 0) >= 1          # C&C
        assert counts.get("REFLECT", 0) > 10          # SMTP containment
        assert counts.get("REWRITE", 0) >= 1          # autoinfection
        # SMTP reflections dominate C&C forwards, as in Figure 7.
        assert counts["REFLECT"] > counts["FORWARD"]

    def test_no_internal_addresses_leak_upstream(self):
        farm, sub, world, cnc, inmate = build_spam_farm("grum", GrumPolicy)
        farm.run(until=300)
        for record in farm.gateway.upstream_trace.select(point="upstream-out"):
            ip = record.ip
            if ip is not None:
                assert not ip.src.is_rfc1918()

    def test_no_spam_escapes_to_any_port25(self):
        farm, sub, world, cnc, inmate = build_spam_farm("grum", GrumPolicy)
        farm.run(until=600)
        escaped = [
            r for r in farm.gateway.upstream_trace.select(point="upstream-out")
            if r.ip is not None and r.ip.proto == 6 and r.ip.tcp.dport == 25
        ]
        assert escaped == []


class TestRustockWorkflow:
    def test_rustock_cnc_and_beacon_filtering(self):
        farm, sub, world, cnc, inmate = build_spam_farm("rustock",
                                                        RustockPolicy)
        farm.run(until=600)
        specimen = getattr(inmate.host, "specimen", None)
        assert specimen is not None
        # https C&C forwarded, beacons rewrite-filtered.
        counts = sub.containment_server.verdict_counts
        assert counts.get("FORWARD", 0) >= 1
        assert counts.get("REWRITE", 0) >= 2  # autoinfect + >=1 beacon
        beacon_server = world.cnc_servers["rustock-beacon"]
        stat_requests = [r for r in beacon_server.requests_served
                         if r.path.startswith("/stat")]
        assert stat_requests, "beacons must still reach the C&C"
        # The REWRITE filter zeroes the sent= statistic in flight.
        for request in stat_requests:
            assert "sent=0" in request.path
        assert specimen.stats.get("messages_sent", 0) != 0 or True

    def test_rustock_spam_contained(self):
        farm, sub, world, cnc, inmate = build_spam_farm("rustock",
                                                        RustockPolicy)
        farm.run(until=600)
        assert world.total_spam_delivered() == 0
        assert sub.sinks["smtp_sink"].data_transfers > 5


class TestMegadWorkflow:
    def test_megad_binary_cnc_forwarded(self):
        farm, sub, world, cnc, inmate = build_spam_farm("megad", MegadPolicy)
        farm.run(until=600)
        specimen = getattr(inmate.host, "specimen", None)
        assert specimen is not None
        assert cnc.requests_served >= 1
        assert specimen.stats.get("cnc_fetches", 0) >= 1
        assert world.total_spam_delivered() == 0
        assert sub.sinks["smtp_sink"].data_transfers > 5
