"""The fault-injection plane end to end: scenarios, determinism,
lifecycle faults, and campaign-worker faults.

Integration coverage rides on ``repro.experiments.fault_matrix``'s
`fault_farm_shard`, which runs a whole resilient farm under one named
chaos scenario and asserts the fail-closed property in-shard.
"""

from __future__ import annotations

import pytest

from repro.experiments.fault_matrix import QUICK_SCENARIOS, fault_farm_shard
from repro.farm import Farm, FarmConfig
from repro.faults import FaultPlan
from repro.parallel.campaign import Campaign, ShardSpec
from repro.parallel.pool import run_campaign

pytestmark = pytest.mark.integration

SMALL = dict(subfarms=1, inmates=2, rounds=8)


class TestScenarios:
    @pytest.mark.parametrize("scenario", QUICK_SCENARIOS)
    def test_quick_scenario_fails_closed(self, scenario):
        payload = fault_farm_shard(seed=11, scenario=scenario, **SMALL)
        assert payload["leaks"] == 0
        assert payload["leak_flows"] == []
        assert payload["degradation_reported"]
        # The in-shard leak check is certificate-backed: the static
        # proof must be CONTAINED and the runtime evidence covered.
        assert payload["certificate"]["result"] == "CONTAINED"
        assert payload["coverage"]["violations"] == []

    def test_cs_slow_still_verdicts(self):
        payload = fault_farm_shard(seed=11, scenario="shim_degraded",
                                   **SMALL)
        assert payload["leaks"] == 0

    def test_crash_scenario_records_failover(self):
        payload = fault_farm_shard(seed=11, scenario="cs_crash", **SMALL)
        resilience = payload["resilience"]
        assert any(s["failovers"] >= 1 or s["fail_closed"] >= 1
                   for s in resilience.values())


class TestDeterminism:
    def test_same_seed_same_scenario_same_digest(self):
        first = fault_farm_shard(seed=11, scenario="cs_crash", **SMALL)
        second = fault_farm_shard(seed=11, scenario="cs_crash", **SMALL)
        assert first["digest"] == second["digest"]

    def test_different_scenarios_diverge(self):
        baseline = fault_farm_shard(seed=11, scenario="baseline", **SMALL)
        chaos = fault_farm_shard(seed=11, scenario="cs_crash", **SMALL)
        assert baseline["digest"] != chaos["digest"]
        assert baseline["leaks"] == 0


class TestLifecycleFaults:
    def test_revert_fail_triggers_controller_retry(self):
        payload = fault_farm_shard(seed=11, scenario="revert_fail",
                                   subfarms=1, inmates=2, rounds=8)
        assert payload["lifecycle"]["retries"] >= 1
        assert payload["leaks"] == 0

    def test_exhausted_retry_budget_abandons_inmate(self):
        farm = Farm(FarmConfig(
            seed=3,
            lifecycle_retry_limit=1,
            lifecycle_retry_backoff=5.0,
            fault_plan={"specs": [
                {"kind": "revert_fail", "count": 5},
            ]},
        ))
        sub = farm.create_subfarm("lab")
        inmate = sub.create_inmate(image_factory=lambda host: None)
        farm.sim.schedule(40.0, farm.controller.execute, "revert",
                          inmate.vlan)
        farm.run(until=200.0)

        # One external revert + one retry, both injected to fail, then
        # the controller gives up and records the abandonment.
        assert len(farm.controller.retries_scheduled) == 1
        assert len(farm.controller.abandoned) == 1
        _, action, vlan = farm.controller.abandoned[0]
        assert (action, vlan) == ("revert", inmate.vlan)


class TestWorkerFaults:
    def plan(self, kind):
        return FaultPlan.coerce({"specs": [{"kind": kind, "shard": 1}]})

    def campaign(self):
        return Campaign.seed_sweep(
            "chaos-workers", "repro.parallel.tasks:noop_shard",
            count=3, base_seed=5)

    def test_worker_error_is_structured_and_isolated(self):
        result = run_campaign(self.campaign(), workers=1,
                              fault_plan=self.plan("worker_error"))
        assert not result.ok
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure["shard"] == 1
        assert failure["kind"] == "error"
        # The other shards still completed.
        assert sum(1 for r in result.shard_results if r.ok) == 2

    def test_worker_crash_serial_path_survives(self):
        """On the in-process serial path an injected crash must not
        kill the test process: it degrades to a structured failure."""
        result = run_campaign(self.campaign(), workers=1,
                              fault_plan=self.plan("worker_crash"))
        assert not result.ok
        assert result.failures[0]["kind"] == "crash"

    def test_fault_overlay_is_deterministic(self):
        plan = self.plan("worker_error")
        first = run_campaign(self.campaign(), workers=1, fault_plan=plan)
        second = run_campaign(self.campaign(), workers=1, fault_plan=plan)
        assert first.digest == second.digest

    def test_no_plan_means_no_overlay(self):
        clean = run_campaign(self.campaign(), workers=1)
        explicit = run_campaign(self.campaign(), workers=1,
                                fault_plan=FaultPlan())
        assert clean.ok and explicit.ok
        assert clean.digest == explicit.digest
