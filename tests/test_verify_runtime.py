"""Runtime cross-validation and the ``python -m repro.verify`` CLI:
journal coverage, flow-table coverage, violation provenance, and the
verify-quick gate's building blocks.
"""

from __future__ import annotations

import json

import pytest

from repro.core.policy import AllowAll, DefaultDeny
from repro.farm import Farm, FarmConfig
from repro.verify import (
    certify_farm,
    check_farm,
    check_flowtables,
    check_journal,
    render_violations,
)
from repro.verify.__main__ import main as verify_main

pytestmark = pytest.mark.integration

_WORLD_IP = "203.0.113.80"
_WORLD_PORT = 80


def _echo(host) -> None:
    def on_accept(conn):
        conn.on_data = lambda c, data: c.send(data)
        conn.on_remote_close = lambda c: c.close()

    host.tcp.listen(_WORLD_PORT, on_accept)


def _talker(host) -> None:
    from repro.net.addresses import IPv4Address
    from repro.services.dhcp import DhcpClient

    def configured(h):
        def talk():
            conn = h.tcp.connect(IPv4Address(_WORLD_IP), _WORLD_PORT)
            conn.on_established = lambda c: c.send(b"hello world")
            conn.on_data = lambda c, d: c.close()

        h.sim.schedule(1.0, talk, label="talk")

    DhcpClient(host, on_configured=configured).start()


def _active_farm(policy=None, seed=9, journal=True, **config):
    """A farm whose inmate actually reaches the world, so runtime
    evidence (journal events, flow-table entries) exists."""
    farm = Farm(FarmConfig(seed=seed, journal=journal, **config))
    _echo(farm.add_external_host("echo", _WORLD_IP))
    sub = farm.create_subfarm("live")
    sub.set_default_policy(policy or AllowAll())
    sub.create_inmate(image_factory=lambda host: _talker(host))
    # Inmate boot + DHCP completes around t=31; run past it so the
    # talker's flow actually happens.
    farm.run(until=60.0)
    return farm


class TestJournalCoverage:
    def test_matching_certificate_covers_run(self):
        farm = _active_farm()
        cert = certify_farm(farm, label="live")
        report = check_journal(cert, farm.journal_snapshot())
        assert report.ok
        assert report.checked > 0
        assert report.covered == report.checked

    def test_mismatched_certificate_flags_violations(self):
        # Certify a deny-everything farm, then check it against the
        # journal of a farm that forwarded to the world: every
        # world-reaching verdict is uncovered.
        deny = Farm(FarmConfig(seed=9))
        deny_sub = deny.create_subfarm("live")
        deny_sub.set_default_policy(DefaultDeny())
        deny.run(until=1.0)
        deny_cert = certify_farm(deny, label="deny")
        assert deny_cert["grants"] == []

        live = _active_farm()
        report = check_journal(deny_cert, live.journal_snapshot())
        assert not report.ok
        violation = report.violations[0]
        assert violation["source"] == "journal"
        assert violation["verdict"] == "FORWARD"
        assert violation["proto"] == "tcp"
        assert violation["destination"] == _WORLD_IP
        assert violation["vlan"] is not None

    def test_farm_internal_flows_not_checked(self):
        # A run with no world destinations produces no world-reaching
        # observations, so even an empty grant table is consistent.
        farm = Farm(FarmConfig(seed=5, journal=True))
        sub = farm.create_subfarm("idle")
        sub.set_default_policy(AllowAll())
        sub.create_inmate(image_factory=lambda host: None)
        farm.run(until=40.0)
        cert = certify_farm(farm, label="idle")
        report = check_journal(cert, farm.journal_snapshot())
        assert report.ok

    def test_violation_rendering_includes_provenance(self):
        deny = Farm(FarmConfig(seed=9))
        deny_sub = deny.create_subfarm("live")
        deny_sub.set_default_policy(DefaultDeny())
        deny.run(until=1.0)
        deny_cert = certify_farm(deny, label="deny")
        live = _active_farm()
        snapshot = live.journal_snapshot()
        report = check_journal(deny_cert, snapshot)
        text = render_violations(report, snapshot)
        assert "coverage violation" in text
        assert "not covered by any certificate grant" in text
        # The uncovered flow renders its causal chain, like obs why.
        assert "flow.created" in text


class TestFlowtableCoverage:
    def test_installed_upstream_entries_covered(self):
        farm = _active_farm()
        cert = certify_farm(farm, label="fast")
        report = check_flowtables(cert, farm)
        assert report.ok

    def test_uncovered_entry_reported_with_port(self):
        farm = _active_farm()
        deny = Farm(FarmConfig(seed=9))
        deny_sub = deny.create_subfarm("live")
        deny_sub.set_default_policy(DefaultDeny())
        deny.run(until=1.0)
        deny_cert = certify_farm(deny, label="deny")
        report = check_flowtables(deny_cert, farm)
        if report.checked:  # fastpath installed at least one entry
            assert not report.ok
            violation = report.violations[0]
            assert violation["source"] == "flowtable"
            assert violation["dport"] == _WORLD_PORT
            assert violation["dst"] == _WORLD_IP

    def test_check_farm_combines_both_passes(self):
        farm = _active_farm()
        cert = certify_farm(farm, label="combined")
        report = check_farm(cert, farm)
        assert report.ok
        assert report.checked >= 1


class TestCli:
    def test_certify_json_contained(self, capsys):
        assert verify_main(["certify", "--json", "--duration", "60",
                            "--label", "cli"]) == 0
        cert = json.loads(capsys.readouterr().out)
        assert cert["schema"] == "gq.verify/1"
        assert cert["result"] == "CONTAINED"
        assert cert["label"] == "cli"

    def test_certify_scenario_and_check(self, capsys):
        assert verify_main(["certify", "--scenario", "cs_crash",
                            "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "isolation certificate [CONTAINED]" in out
        assert verify_main(["check", "--scenario", "cs_crash",
                            "--duration", "60"]) == 0
        assert "coverage ok" in capsys.readouterr().out

    def test_certificate_written_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "cert.json"
        assert verify_main(["certify", "--duration", "60",
                            "--out", str(out_path)]) == 0
        cert = json.loads(out_path.read_text())
        from repro.verify import verify_digest

        assert verify_digest(cert)


class TestReportSection:
    def test_report_renders_certificate_section(self):
        from repro.reporting.report import ActivityReport, render_report

        farm = _active_farm()
        cert = certify_farm(farm, label="report")
        coverage = check_farm(cert, farm)
        report = ActivityReport.from_subfarms(
            [farm.subfarms["live"]])
        report.attach_certificate(cert, coverage=coverage.to_dict())
        rendered = render_report(report)
        assert "Isolation certificate" in rendered
        assert "Result: CONTAINED" in rendered
        assert cert["digest"] in rendered
        assert "World grants" in rendered
        assert "Runtime coverage" in rendered

    def test_report_without_certificate_unchanged(self):
        from repro.reporting.report import ActivityReport, render_report

        farm = _active_farm()
        report = ActivityReport.from_subfarms(
            [farm.subfarms["live"]])
        assert "Isolation certificate" not in render_report(report)
