"""Figure 6 configuration format and activity triggers."""

from __future__ import annotations

import pytest

from repro.core.config import (
    ConfigError,
    ContainmentConfig,
    SampleLibrary,
    apply_config,
)
from repro.core.triggers import TriggerEngine, TriggerSpec
from repro.farm import Farm, FarmConfig
from repro.malware.corpus import Sample
from repro.net.addresses import IPv4Address
from repro.net.flow import FiveTuple
from repro.net.packet import PROTO_TCP, PROTO_UDP
from repro.sim.engine import Simulator

FIGURE_6 = """
[VLAN 16-17]
Decider = Rustock
Infection = rustock.100921.*.exe

[VLAN 18-19]
Decider = Grum
Infection = grum.100818.*.exe

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert

[Autoinfect]
Address = 10.9.8.7
Port = 6543

[BannerSmtpSink]
Address = 10.3.1.4
Port = 2526
"""


def smtp_flow(dst="198.51.100.9", port=25):
    return FiveTuple(IPv4Address("10.100.0.2"), 4242,
                     IPv4Address(dst), port, PROTO_TCP)


class TestConfigParsing:
    def test_figure6_parses(self):
        config = ContainmentConfig.parse(FIGURE_6)
        assert len(config.vlan_sections) == 3
        assert config.vlan_sections[0].decider == "Rustock"
        assert config.vlan_sections[0].infection == "rustock.100921.*.exe"
        assert config.vlan_sections[1].decider == "Grum"
        assert config.vlan_sections[2].triggers == [
            "*:25/tcp / 30min < 1 -> revert"
        ]

    def test_section_resolution_by_vlan(self):
        config = ContainmentConfig.parse(FIGURE_6)
        assert config.section_for_vlan(16).decider == "Rustock"
        assert config.section_for_vlan(19).decider == "Grum"
        assert config.section_for_vlan(99) is None

    def test_trigger_applies_to_whole_range(self):
        config = ContainmentConfig.parse(FIGURE_6)
        for vlan in (16, 17, 18, 19):
            assert config.triggers_for_vlan(vlan)
        assert config.triggers_for_vlan(20) == []

    def test_service_sections(self):
        config = ContainmentConfig.parse(FIGURE_6)
        autoinfect = config.service("Autoinfect")
        assert str(autoinfect.address) == "10.9.8.7"
        assert autoinfect.port == 6543
        sink = config.service("BannerSmtpSink")
        assert sink.port == 2526

    def test_malformed_trigger_fails_at_parse_time(self):
        with pytest.raises(ValueError):
            ContainmentConfig.parse("[VLAN 1]\nTrigger = gibberish\n")

    def test_key_outside_section_rejected(self):
        with pytest.raises(ConfigError):
            ContainmentConfig.parse("Decider = Rustock\n")

    def test_comments_and_blanks_ignored(self):
        config = ContainmentConfig.parse(
            "# comment\n\n[VLAN 5]\n; another\nDecider = Grum\n")
        assert config.section_for_vlan(5).decider == "Grum"

    def test_single_vlan_section(self):
        config = ContainmentConfig.parse("[VLAN 7]\nDecider = Rustock\n")
        section = config.section_for_vlan(7)
        assert (section.first, section.last) == (7, 7)


class TestSampleLibrary:
    def test_pattern_matching(self):
        library = SampleLibrary()
        library.add("rustock.100921.a.exe", Sample("rustock"))
        library.add("rustock.100921.b.exe", Sample("rustock",
                                                   params={"v": 2}))
        library.add("grum.100818.a.exe", Sample("grum"))
        batch = library.match("rustock.100921.*.exe")
        assert len(batch) == 2

    def test_unmatched_pattern_raises(self):
        with pytest.raises(ConfigError):
            SampleLibrary().match("nothing.*")


class TestApplyConfig:
    def test_policies_wired_into_subfarm(self):
        farm = Farm(FarmConfig(seed=1))
        sub = farm.create_subfarm("botfarm")
        library = SampleLibrary()
        library.add("rustock.100921.a.exe", Sample("rustock"))
        library.add("grum.100818.a.exe", Sample("grum"))
        config = ContainmentConfig.parse(FIGURE_6)
        policies = apply_config(config, sub, library)
        assert sub.policy_map.resolve(16).policy_name == "Rustock"
        assert sub.policy_map.resolve(18).policy_name == "Grum"
        assert sub.policy_map.resolve(99).policy_name == "DefaultDeny"
        assert (16, 17) in policies and (18, 19) in policies
        # Services registered under policy-facing keys.
        assert "smtp_sink" in sub.services

    def test_missing_library_with_infection_raises(self):
        farm = Farm(FarmConfig(seed=1))
        sub = farm.create_subfarm("botfarm")
        config = ContainmentConfig.parse(FIGURE_6)
        with pytest.raises(ConfigError):
            apply_config(config, sub, library=None)


class TestTriggerSpec:
    def test_figure6_trigger_parses(self):
        spec = TriggerSpec.parse("*:25/tcp / 30min < 1 -> revert")
        assert spec.dst is None
        assert spec.port == 25
        assert spec.proto == PROTO_TCP
        assert spec.window == 1800.0
        assert spec.op == "<"
        assert spec.threshold == 1
        assert spec.action == "revert"
        assert spec.under_threshold

    def test_specific_destination(self):
        spec = TriggerSpec.parse(
            "198.51.100.9:80/udp / 5min > 100 -> terminate")
        assert str(spec.dst) == "198.51.100.9"
        assert spec.proto == PROTO_UDP
        assert not spec.under_threshold

    def test_matching(self):
        spec = TriggerSpec.parse("*:25/tcp / 30min < 1 -> revert")
        assert spec.matches(smtp_flow())
        assert not spec.matches(smtp_flow(port=80))


class TestTriggerEngine:
    def test_absence_trigger_fires_after_quiet_window(self):
        sim = Simulator(seed=0)
        actions = []
        engine = TriggerEngine(sim, lifecycle=lambda a, v: actions.append((a, v)),
                               check_interval=30.0)
        engine.add_text("*:25/tcp / 5min < 1 -> revert", {18})
        # The inmate shows some activity, then goes quiet.
        engine.flow_event(18, 0.0, smtp_flow())
        sim.run(until=200)
        assert actions == [], "window has not elapsed in silence yet"
        sim.run(until=1000)
        assert ("revert", 18) in actions

    def test_absence_trigger_holds_while_active(self):
        sim = Simulator(seed=0)
        actions = []
        engine = TriggerEngine(sim, lifecycle=lambda a, v: actions.append((a, v)),
                               check_interval=30.0)
        engine.add_text("*:25/tcp / 5min < 1 -> revert", {18})

        from repro.sim.process import Process
        keeper = Process(sim, 60.0, lambda: engine.flow_event(
            18, sim.now, smtp_flow()), label="keepalive")
        keeper.start()
        sim.run(until=2000)
        assert actions == []

    def test_overrate_trigger_fires_immediately(self):
        sim = Simulator(seed=0)
        actions = []
        engine = TriggerEngine(sim, lifecycle=lambda a, v: actions.append((a, v)),
                               check_interval=30.0)
        engine.add_text("*:25/tcp / 1min > 10 -> terminate", {7})
        for i in range(12):
            engine.flow_event(7, float(i), smtp_flow())
        assert ("terminate", 7) in actions

    def test_trigger_only_binds_its_vlans(self):
        sim = Simulator(seed=0)
        actions = []
        engine = TriggerEngine(sim, lifecycle=lambda a, v: actions.append((a, v)),
                               check_interval=30.0)
        engine.add_text("*:25/tcp / 1min > 2 -> terminate", {7})
        for i in range(5):
            engine.flow_event(8, float(i), smtp_flow())  # different vlan
        assert actions == []

    def test_lifecycle_revert_through_controller(self):
        """Trigger -> containment server -> management network ->
        inmate controller -> inmate revert: the full §5.5 loop."""
        from repro.inmates.images import idle_image

        farm = Farm(FarmConfig(seed=4))
        sub = farm.create_subfarm("lifecycle")
        inmate = sub.create_inmate(image_factory=idle_image())
        farm.run(until=60)
        first_generation = inmate.generation
        assert inmate.host is not None

        sub.trigger_engine.add_text("*:25/tcp / 2min < 1 -> revert",
                                    {inmate.vlan})
        # Show activity once so the absence trigger arms.
        sub.trigger_engine.flow_event(inmate.vlan, farm.sim.now, smtp_flow())
        farm.run(until=700)
        assert inmate.reverts >= 1
        assert inmate.generation > first_generation