"""Gateway building blocks: NAT, safety filter, bridge, VLAN pool."""

from __future__ import annotations

import pytest

from repro.gateway.bridge import LearningBridge
from repro.gateway.nat import (
    AddressPool,
    AddressPoolExhausted,
    InboundMode,
    NatTable,
)
from repro.gateway.safety import SafetyFilter
from repro.inmates.vlan_pool import VlanPool, VlanPoolExhausted
from repro.net.addresses import IPv4Address, IPv4Network, MacAddress


def make_nat():
    internal = AddressPool([IPv4Network("10.100.0.0/24")],
                           reserved=[IPv4Address("10.100.0.1")])
    global_pool = AddressPool([IPv4Network("198.18.0.0/24")])
    return NatTable(internal, global_pool)


class TestAddressPool:
    def test_sequential_allocation_skips_reserved(self):
        pool = AddressPool([IPv4Network("10.0.0.0/29")],
                           reserved=[IPv4Address("10.0.0.1")])
        assert str(pool.allocate()) == "10.0.0.2"
        assert str(pool.allocate()) == "10.0.0.3"

    def test_exhaustion(self):
        pool = AddressPool([IPv4Network("10.0.0.0/30")])  # 2 usable
        pool.allocate()
        pool.allocate()
        with pytest.raises(AddressPoolExhausted):
            pool.allocate()

    def test_release_recycles(self):
        pool = AddressPool([IPv4Network("10.0.0.0/30")])
        first = pool.allocate()
        pool.allocate()
        pool.release(first)
        assert pool.allocate() == first

    def test_spans_multiple_networks(self):
        pool = AddressPool([IPv4Network("10.0.0.0/30"),
                            IPv4Network("10.0.1.0/30")])
        addresses = [pool.allocate() for _ in range(4)]
        assert str(addresses[2]) == "10.0.1.1"


class TestNatTable:
    def test_bind_is_idempotent(self):
        nat = make_nat()
        first = nat.bind(5)
        assert nat.bind(5) == first

    def test_bidirectional_lookup(self):
        nat = make_nat()
        internal = nat.bind(5)
        global_ip = nat.global_for(5)
        assert nat.to_global(internal) == global_ip
        assert nat.to_internal(global_ip) == internal
        assert nat.vlan_for_internal(internal) == 5
        assert nat.vlan_for_global(global_ip) == 5

    def test_unbind_releases_both_addresses(self):
        nat = make_nat()
        internal = nat.bind(5)
        global_ip = nat.global_for(5)
        nat.unbind(5)
        assert nat.vlan_for_internal(internal) is None
        assert nat.vlan_for_global(global_ip) is None
        # Addresses recycle for the next inmate.
        assert nat.bind(6) == internal

    def test_internal_addresses_are_rfc1918(self):
        nat = make_nat()
        for vlan in range(2, 10):
            assert nat.bind(vlan).is_rfc1918()
            assert not nat.global_for(vlan).is_rfc1918()


class TestSafetyFilter:
    def test_admits_under_thresholds(self):
        f = SafetyFilter(max_flows_per_window=10,
                         max_flows_per_destination=5, window=60.0)
        dst = IPv4Address("203.0.113.1")
        assert all(f.admit(float(i), 7, dst) for i in range(5))

    def test_per_destination_threshold(self):
        f = SafetyFilter(max_flows_per_window=100,
                         max_flows_per_destination=3, window=60.0)
        dst = IPv4Address("203.0.113.1")
        for i in range(3):
            assert f.admit(float(i), 7, dst)
        assert not f.admit(3.0, 7, dst)
        assert f.alerts[-1].reason == "per-destination flow rate"
        # A different destination is still fine.
        assert f.admit(3.0, 7, IPv4Address("203.0.113.2"))

    def test_per_inmate_threshold_across_destinations(self):
        f = SafetyFilter(max_flows_per_window=4,
                         max_flows_per_destination=100, window=60.0)
        for i in range(4):
            assert f.admit(float(i), 7, IPv4Address(f"203.0.113.{i + 1}"))
        assert not f.admit(4.0, 7, IPv4Address("203.0.113.99"))
        assert f.alerts[-1].reason == "per-inmate flow rate"

    def test_window_slides(self):
        f = SafetyFilter(max_flows_per_window=2,
                         max_flows_per_destination=2, window=10.0)
        dst = IPv4Address("203.0.113.1")
        assert f.admit(0.0, 7, dst)
        assert f.admit(1.0, 7, dst)
        assert not f.admit(2.0, 7, dst)
        assert f.admit(11.5, 7, dst), "old flows aged out"

    def test_reset_inmate_clears_history(self):
        f = SafetyFilter(max_flows_per_window=1,
                         max_flows_per_destination=1, window=1000.0)
        dst = IPv4Address("203.0.113.1")
        assert f.admit(0.0, 7, dst)
        assert not f.admit(1.0, 7, dst)
        f.reset_inmate(7)
        assert f.admit(2.0, 7, dst)


class TestLearningBridge:
    def test_learns_mac_and_ip(self):
        bridge = LearningBridge()
        mac = MacAddress("02:00:00:00:00:10")
        bridge.learn(5, mac, 1.0, ip=IPv4Address("10.100.0.2"))
        assert bridge.mac_for(5) == mac
        assert bridge.vlan_for_ip(IPv4Address("10.100.0.2")) == 5

    def test_ip_change_remaps(self):
        bridge = LearningBridge()
        mac = MacAddress("02:00:00:00:00:10")
        bridge.learn(5, mac, 1.0, ip=IPv4Address("10.100.0.2"))
        bridge.learn(5, mac, 2.0, ip=IPv4Address("10.100.0.9"))
        assert bridge.vlan_for_ip(IPv4Address("10.100.0.2")) is None
        assert bridge.vlan_for_ip(IPv4Address("10.100.0.9")) == 5

    def test_new_mac_resets_entry(self):
        """A reverted inmate boots with a fresh MAC: the bridge must
        treat it as a new machine."""
        bridge = LearningBridge()
        bridge.learn(5, MacAddress("02:00:00:00:00:10"), 1.0,
                     ip=IPv4Address("10.100.0.2"))
        entry = bridge.learn(5, MacAddress("02:00:00:00:00:20"), 2.0)
        assert entry.first_seen == 2.0
        assert entry.ip is None

    def test_forget(self):
        bridge = LearningBridge()
        bridge.learn(5, MacAddress("02:00:00:00:00:10"), 1.0,
                     ip=IPv4Address("10.100.0.2"))
        bridge.forget(5)
        assert bridge.mac_for(5) is None
        assert bridge.vlan_for_ip(IPv4Address("10.100.0.2")) is None


class TestVlanPool:
    def test_802_1q_ceiling(self):
        pool = VlanPool()
        assert pool.capacity == 4093  # 2..4094

    def test_exhaustion_raises(self):
        pool = VlanPool(first=10, last=12)
        for _ in range(3):
            pool.allocate()
        with pytest.raises(VlanPoolExhausted):
            pool.allocate()

    def test_release_and_reuse(self):
        pool = VlanPool(first=10, last=11)
        a = pool.allocate()
        pool.allocate()
        pool.release(a)
        assert pool.allocate() == a

    def test_allocate_specific_conflicts(self):
        pool = VlanPool(first=10, last=20)
        pool.allocate_specific(15)
        with pytest.raises(VlanPoolExhausted):
            pool.allocate_specific(15)
