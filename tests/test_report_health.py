"""§6.5 health checks: verifying containment from the reports."""

from __future__ import annotations

import pytest

from repro.core.policy import AllowAll
from repro.experiments.figure7 import run_figure7
from repro.experiments.waledac_fidelity import run_waledac
from repro.farm import Farm, FarmConfig
from repro.reporting.health import HealthChecker
from repro.reporting.report import ActivityReport
from repro.world.builder import ExternalWorld
from tests.test_containment_end_to_end import (
    EXTERNAL_WEB_IP,
    http_fetch_image,
    http_server,
)

pytestmark = pytest.mark.integration


class TestHealthChecker:
    def test_well_contained_botfarm_is_clean(self):
        result = run_figure7(duration=400)
        warnings = HealthChecker(expect_autoinfection=True).check(
            result.report)
        assert warnings == [], warnings

    def test_forward_heavy_policy_flagged(self):
        """AllowAll is the §6.5 example of an 'unusual number of
        FORWARD verdicts'."""
        farm = Farm(FarmConfig(seed=171))
        sub = farm.create_subfarm("buggy")
        web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
        http_server(web)
        image, _results = http_fetch_image()
        sub.create_inmate(image_factory=image, policy=AllowAll())
        farm.run(until=120)
        report = ActivityReport.from_subfarms([sub])
        warnings = HealthChecker().check(report)
        assert any(w.check == "forward-heavy" and w.severity == "critical"
                   for w in warnings)

    def test_blacklisted_inmate_flagged(self):
        """The Waledac test-message incident surfaces as a critical
        warning — exactly how GQ noticed it (§6.5 blacklist checks)."""
        result = run_waledac("test-message", duration=400)
        # Rebuild the report with the blocklist wired in.
        assert result.inmate_blacklisted  # scenario sanity
        # The waledac experiment does not keep its farm; run a focused
        # scenario instead.
        from repro.experiments.waledac_fidelity import (
            WaledacEarlyPolicy,
        )
        from repro.inmates.images import autoinfect_image
        from repro.malware.corpus import Sample

        farm = Farm(FarmConfig(seed=172))
        sub = farm.create_subfarm("waledac")
        world = ExternalWorld(farm)
        world.add_standard_victims(domains=1, mailboxes_per_domain=5)
        world.add_http_cnc("waledac", "waledac-cc.example",
                           world.default_campaign("waledac"),
                           path_prefix="/waledac/")
        sub.add_catchall_sink()
        sub.add_smtp_sink()
        gmail = world.mx_for_domain("gmail.example")
        policy = WaledacEarlyPolicy(gmail.mx.host.ip)
        inmate = sub.create_inmate(image_factory=autoinfect_image(),
                                   policy=policy)
        policy.set_sample(inmate.vlan, inmate.vlan,
                          Sample("waledac",
                                 params={"test_recipient":
                                         "probe@gmail.example"}))
        farm.run(until=400)
        report = ActivityReport.from_subfarms([sub], world.blocklist)
        warnings = HealthChecker().check(report)
        assert any(w.check == "blacklisted" for w in warnings)

    def test_missing_autoinfection_flagged(self):
        farm = Farm(FarmConfig(seed=173))
        sub = farm.create_subfarm("noinfect")
        web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
        http_server(web)
        image, _results = http_fetch_image()
        from repro.core.policy import ReflectAll

        sub.add_catchall_sink()
        sub.create_inmate(image_factory=image, policy=ReflectAll())
        farm.run(until=120)
        report = ActivityReport.from_subfarms([sub])
        warnings = HealthChecker(expect_autoinfection=True).check(report)
        assert any(w.check == "no-autoinfection" for w in warnings)
