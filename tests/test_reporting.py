"""Reporting: shim analyzer, SMTP analyzer, Figure 7 report."""

from __future__ import annotations

import pytest

from repro.core.shim import RequestShim, ResponseShim
from repro.core.verdicts import ContainmentDecision, Verdict
from repro.experiments.figure7 import run_figure7
from repro.net.addresses import IPv4Address
from repro.net.flow import FiveTuple
from repro.net.packet import PROTO_TCP
from repro.reporting.analyzer import ShimAnalyzer
from repro.reporting.report import render_report

pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def figure7():
    return run_figure7(duration=600, seed=7)


class TestShimWireFormat:
    def flow(self):
        return FiveTuple(IPv4Address("10.0.0.23"), 1234,
                         IPv4Address("192.150.187.12"), 80, PROTO_TCP)

    def test_request_shim_is_exactly_24_bytes(self):
        shim = RequestShim(self.flow(), vlan_id=12, nonce_port=42)
        assert len(shim.to_bytes()) == 24

    def test_request_round_trip(self):
        shim = RequestShim(self.flow(), vlan_id=12, nonce_port=42)
        parsed = RequestShim.from_bytes(shim.to_bytes())
        assert parsed.flow == self.flow()
        assert parsed.vlan_id == 12
        assert parsed.nonce_port == 42

    def test_response_shim_minimum_56_bytes(self):
        response = ResponseShim(self.flow(), Verdict.FORWARD)
        assert len(response.to_bytes()) == 56

    def test_response_with_annotation_longer(self):
        response = ResponseShim(self.flow(), Verdict.REWRITE,
                                policy="Rustock", annotation="C&C filtering")
        raw = response.to_bytes()
        assert len(raw) > 56
        parsed = ResponseShim.from_bytes(raw)
        assert parsed.policy == "Rustock"
        assert parsed.annotation == "C&C filtering"
        assert parsed.verdict == Verdict.REWRITE

    def test_rate_survives_round_trip(self):
        response = ResponseShim(self.flow(), Verdict.LIMIT, rate=1234.5)
        parsed = ResponseShim.from_bytes(response.to_bytes())
        assert parsed.rate == 1234.5

    def test_policy_tag_capped_at_32_bytes(self):
        response = ResponseShim(self.flow(), Verdict.DROP,
                                policy="X" * 100)
        parsed = ResponseShim.from_bytes(response.to_bytes())
        assert parsed.policy == "X" * 32

    def test_decision_round_trip_redirect_carries_target(self):
        decision = ContainmentDecision.redirect(
            IPv4Address("10.3.0.9"), 2526, policy="Test")
        shim = ResponseShim.from_decision(self.flow(), decision)
        rebuilt = ResponseShim.from_bytes(shim.to_bytes()).to_decision(
            self.flow())
        assert rebuilt.verdict == Verdict.REDIRECT
        assert str(rebuilt.target_ip) == "10.3.0.9"
        assert rebuilt.target_port == 2526


class TestShimAnalyzer:
    def test_events_match_cs_verdict_log(self, figure7):
        report = figure7.report
        totals = report.verdict_totals()
        # The trace-derived totals must reflect real activity.
        assert totals.get("REFLECT", 0) > 100
        assert totals.get("FORWARD", 0) >= 4
        assert totals.get("REWRITE", 0) >= 4

    def test_every_inmate_appears(self, figure7):
        inmates = figure7.report.subfarms["Botfarm"]
        assert sorted(inmates) == [16, 17, 18, 19]

    def test_policies_attributed_from_shims(self, figure7):
        inmates = figure7.report.subfarms["Botfarm"]
        assert inmates[16].policy == "Rustock"
        assert inmates[18].policy == "Grum"


class TestFigure7Shape:
    def test_reflect_dominates_forward(self, figure7):
        totals = figure7.verdict_totals
        assert totals["REFLECT"] > 10 * totals["FORWARD"]

    def test_smtp_sessions_exceed_data_transfers_with_drops(self, figure7):
        # The sink drops a fraction of connections, so sessions
        # attempted > messages harvested (the Figure 7 caption note).
        assert figure7.smtp_sessions > figure7.smtp_data_transfers
        assert figure7.sink_sessions_dropped > 0

    def test_nothing_delivered_outside(self, figure7):
        assert figure7.spam_delivered_outside == 0

    def test_rendered_report_structure(self, figure7):
        text = figure7.rendered
        assert "Subfarm 'Botfarm'" in text
        assert "Rustock [" in text and "Grum [" in text
        assert "FORWARD" in text and "REFLECT" in text and "REWRITE" in text
        assert "full SMTP containment" in text
        assert "C&C filtering" in text          # Rustock beacons
        assert "autoinfection" in text
        assert "SMTP sessions" in text
        assert "SMTP DATA transfers" in text
        assert "clean" in text                  # blacklist checks

    def test_autoinfection_rows_carry_md5(self, figure7):
        assert f"autoinfection {figure7.sample_md5s['rustock']}" \
            in figure7.rendered
        assert f"autoinfection {figure7.sample_md5s['grum']}" \
            in figure7.rendered

    def test_no_forward_verdicts_for_smtp(self, figure7):
        """Containment verification via the report, as §6.5 intends:
        port 25 must never appear under FORWARD."""
        for inmates in figure7.report.subfarms.values():
            for activity in inmates.values():
                for (annotation, target, port) in activity.groups.get(
                    "FORWARD", {}
                ):
                    assert port != 25
