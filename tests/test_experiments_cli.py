"""The ``python -m repro.experiments`` entry point and the campaign
wiring of the rewired experiment harnesses."""

from __future__ import annotations

import json

import pytest

from repro.experiments.__main__ import main, parse_seeds
from repro.experiments.scalability import run_gateway_load_sweep

pytestmark = pytest.mark.integration


class TestParseSeeds:
    def test_inclusive_range(self):
        assert parse_seeds("0..3") == [0, 1, 2, 3]

    def test_comma_list_and_single(self):
        assert parse_seeds("1,5,9") == [1, 5, 9]
        assert parse_seeds("4") == [4]

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            parse_seeds("5..2")


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gateway-load-sweep" in out
        assert "smtp-strictness" in out

    def test_gateway_load_sweep_serial(self, capsys):
        code = main(["gateway-load-sweep", "--seeds", "0..1",
                     "--subfarms", "1", "--inmates-per", "2",
                     "--duration", "40"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["ok"]
        assert summary["merged"]["shards_ok"] == 2
        assert len(summary["shards"]) == 2
        assert summary["digest"]

    def test_streaming_farm_with_workers(self, capsys):
        code = main(["streaming-farm", "--workers", "2",
                     "--seeds", "1..2", "--subfarms", "1",
                     "--inmates-per", "1", "--duration", "30"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["ok"]
        assert summary["workers"] == 2


class TestGatewayLoadSweep:
    def test_serial_vs_parallel_digest(self):
        kwargs = dict(seeds=[0, 1, 2], subfarms=1, inmates_per=2,
                      duration=40.0)
        serial = run_gateway_load_sweep(workers=1, **kwargs)
        parallel = run_gateway_load_sweep(workers=2, **kwargs)
        assert serial.ok and parallel.ok
        assert serial.digest == parallel.digest
        assert serial.merged["metrics"]["flows_created"] > 0

    def test_explicit_seeds_are_used(self):
        result = run_gateway_load_sweep(seeds=[7, 9], subfarms=1,
                                        inmates_per=1, duration=30.0)
        assert [r.payload["seed"] for r in result.shard_results] \
            == [7, 9]
