"""The honeycrawler role: client-side infection via web drive-by."""

from __future__ import annotations

import pytest

from repro.farm import Farm, FarmConfig
from repro.inmates.images import honeycrawler_image
from repro.malware.corpus import Sample
from repro.policies.crawler import HoneycrawlerPolicy
from repro.world.builder import ExternalWorld
from repro.world.driveby import BenignSite, DrivebySite

pytestmark = pytest.mark.integration


def build_crawl_farm(seed=111):
    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("crawl")
    world = ExternalWorld(farm)
    world.add_standard_victims(domains=2, mailboxes_per_domain=20)
    world.add_http_cnc("grum", "grum-cc.example",
                       world.default_campaign("grum", batch_size=10,
                                              send_interval=1.0),
                       path_prefix="/grum/")

    benign_hosts = []
    for i in range(2):
        host = farm.add_external_host(f"benign{i}", str(world.allocate_ip()))
        world.dns.add_a(f"benign{i}.example", host.ip)
        benign_hosts.append(BenignSite(host))

    evil_host = farm.add_external_host("evil", str(world.allocate_ip()))
    world.dns.add_a("warez.example", evil_host.ip)
    driveby = DrivebySite(evil_host, payload=Sample("grum"))

    sub.add_catchall_sink()
    sink = sub.add_smtp_sink()
    urls = ["benign0.example", "benign1.example", "warez.example"]
    infections = []
    inmate = sub.create_inmate(
        image_factory=honeycrawler_image(
            urls, visit_interval=10.0,
            on_infection=lambda h, s: infections.append(s)),
        policy=HoneycrawlerPolicy(),
    )
    return farm, sub, world, benign_hosts, driveby, infections, sink, inmate


class TestHoneycrawler:
    def test_crawl_reaches_sites_and_driveby_infects(self):
        (farm, sub, world, benign, driveby, infections, sink,
         inmate) = build_crawl_farm()
        farm.run(until=600)
        # The crawl itself went out (the experiment's intent)...
        assert all(site.page_hits >= 1 for site in benign)
        assert driveby.page_hits >= 1
        # ...the drive-by chain completed...
        assert driveby.exploit_hits == 1
        assert driveby.payload_downloads == 1
        assert len(infections) == 1
        assert infections[0].family == "grum"
        assert inmate.host.crawler_state["infected"]

    def test_post_infection_activity_is_contained(self):
        (farm, sub, world, benign, driveby, infections, sink,
         inmate) = build_crawl_farm()
        farm.run(until=900)
        specimen = infections[0]
        # The payload came alive: its C&C fetch is NOT a crawl-shaped
        # request, so it was reflected — and inspectable at the sink.
        catch_all = sub.sinks["sink"]
        assert any(b"GET /grum/spm" in bytes(record.payload)
                   for record in catch_all.records)
        # The spam run is contained too.
        assert specimen.stats.get("smtp_sessions", 0) == 0 or \
            world.total_spam_delivered() == 0
        assert world.total_spam_delivered() == 0

    def test_infected_crawler_stops_crawling(self):
        (farm, sub, world, benign, driveby, infections, sink,
         inmate) = build_crawl_farm()
        farm.run(until=600)
        visited = inmate.host.crawler_state["visited"]
        # warez.example was the last visit; infection halted the crawl.
        assert visited[-1] == "warez.example"
