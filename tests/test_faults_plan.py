"""FaultSpec / FaultPlan: validation, round-trip, digests, targeting."""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultPlan, FaultSpec


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor_strike")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="shim_drop", probability=0.5, severity=9)

    def test_probability_bounds(self):
        FaultSpec(kind="shim_drop", probability=0.0)
        FaultSpec(kind="shim_drop", probability=1.0)
        with pytest.raises(ValueError):
            FaultSpec(kind="shim_drop", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(kind="shim_drop", probability=-0.1)

    def test_cs_crash_requires_at(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="cs_crash")
        FaultSpec(kind="cs_crash", at=10.0)

    def test_worker_kinds_require_shard(self):
        for kind in ("worker_crash", "worker_hang", "worker_error"):
            with pytest.raises(ValueError):
                FaultSpec(kind=kind)
            FaultSpec(kind=kind, shard=0)

    def test_window_must_be_ordered(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="shim_partition", start=50.0, end=20.0)
        FaultSpec(kind="shim_partition", start=20.0, end=50.0)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="revert_fail", count=0)
        FaultSpec(kind="revert_fail", count=1)

    def test_restore_after_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="cs_crash", at=5.0, restore_after=0.0)
        FaultSpec(kind="cs_crash", at=5.0, restore_after=1.0)


class TestFaultSpecWindow:
    def test_active_window(self):
        spec = FaultSpec(kind="shim_partition", start=20.0, end=50.0)
        assert not spec.active(19.9)
        assert spec.active(20.0)
        assert spec.active(49.9)
        assert not spec.active(50.0)

    def test_open_ended_window(self):
        spec = FaultSpec(kind="shim_drop", probability=0.5, start=10.0)
        assert spec.active(10.0)
        assert spec.active(1e9)


class TestFaultSpecRoundTrip:
    def test_to_dict_emits_only_non_defaults(self):
        spec = FaultSpec(kind="shim_drop", probability=0.25, start=10.0)
        data = spec.to_dict()
        assert data == {"kind": "shim_drop", "probability": 0.25,
                        "start": 10.0}

    def test_round_trip(self):
        spec = FaultSpec(kind="cs_crash", at=30.0, restore_after=40.0,
                         subfarm="alpha", server=1)
        clone = FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.to_dict() == spec.to_dict()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises((TypeError, ValueError)):
            FaultSpec.from_dict({"kind": "shim_drop", "wat": 1})


class TestFaultPlan:
    def plan(self):
        return FaultPlan([
            FaultSpec(kind="cs_crash", at=30.0, subfarm="alpha"),
            FaultSpec(kind="shim_partition", start=20.0, end=50.0),
            FaultSpec(kind="worker_crash", shard=3),
            FaultSpec(kind="revert_fail", vlan=101, count=2),
        ])

    def test_empty(self):
        assert FaultPlan().is_empty
        assert not self.plan().is_empty

    def test_coerce_forms(self):
        plan = self.plan()
        assert FaultPlan.coerce(None).is_empty
        assert FaultPlan.coerce(plan) is plan
        from_dict = FaultPlan.coerce(plan.to_dict())
        assert from_dict.to_dict() == plan.to_dict()
        from_list = FaultPlan.coerce([s.to_dict() for s in plan.specs])
        assert from_list.to_dict() == plan.to_dict()

    def test_round_trip_through_json(self):
        plan = self.plan()
        clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone.to_dict() == plan.to_dict()
        assert clone.digest() == plan.digest()

    def test_digest_stable_and_sensitive(self):
        assert self.plan().digest() == self.plan().digest()
        other = FaultPlan([FaultSpec(kind="cs_crash", at=31.0,
                                     subfarm="alpha")])
        assert other.digest() != self.plan().digest()

    def test_for_subfarm_filters_targeting(self):
        plan = self.plan()
        alpha = [s.kind for s in plan.for_subfarm("alpha")]
        beta = [s.kind for s in plan.for_subfarm("beta")]
        # Untargeted link faults apply everywhere; worker faults never
        # reach a subfarm view.
        assert alpha == ["cs_crash", "shim_partition", "revert_fail"]
        assert beta == ["shim_partition", "revert_fail"]

    def test_worker_faults_keyed_by_shard(self):
        overlay = self.plan().worker_faults()
        assert list(overlay) == [3]
        assert overlay[3]["kind"] == "worker_crash"

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises((TypeError, ValueError)):
            FaultPlan.from_dict({"specs": [], "extra": True})
