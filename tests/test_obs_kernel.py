"""The telemetry kernel: metrics, traces, hub, exporters.

Covers the zero-dependency obs layer in isolation — counters, gauges
and histogram quantiles; label-cardinality capping; span ordering
under same-virtual-timestamp events; hub ring-buffer eviction; and the
JSON exporter round-trip.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.export import SNAPSHOT_SCHEMA, snapshot, render_text, to_json
from repro.obs.metrics import (
    NULL_INSTRUMENT,
    OVERFLOW_KEY,
    Counter,
    Histogram,
    MetricsRegistry,
    format_key,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.trace import Tracer

pytestmark = pytest.mark.obs


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_labels_and_totals(self):
        registry = MetricsRegistry()
        flows = registry.counter("flows", "flows by verdict")
        flows.inc(verdict="FORWARD")
        flows.inc(3, verdict="DROP")
        flows.inc(verdict="DROP")
        assert flows.value(verdict="FORWARD") == 1
        assert flows.value(verdict="DROP") == 4
        assert flows.value(verdict="REWRITE") == 0
        assert flows.total() == 5

    def test_bound_cell_shares_state_with_labeled_calls(self):
        registry = MetricsRegistry()
        metric = registry.counter("hits")
        cell = metric.bind(subfarm="a")
        cell.inc()
        metric.inc(subfarm="a")
        assert metric.value(subfarm="a") == 2

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        depth = registry.gauge("depth")
        depth.set(10)
        depth.inc(5)
        depth.dec(2)
        assert depth.value() == 13

    def test_registry_get_or_create_and_kind_mismatch(self):
        registry = MetricsRegistry()
        a = registry.counter("x")
        assert registry.counter("x") is a
        assert registry.get("x") is a
        assert registry.get("missing") is None
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_histogram_quantiles(self):
        registry = MetricsRegistry()
        latency = registry.histogram("latency")
        for ms in range(1, 101):
            latency.observe(ms / 1000.0)
        assert latency.quantile(0.0) == pytest.approx(0.001)
        assert latency.quantile(1.0) == pytest.approx(0.100)
        # Interpolated quantiles stay within the observed range and
        # are monotone.
        p50 = latency.quantile(0.50)
        p95 = latency.quantile(0.95)
        p99 = latency.quantile(0.99)
        assert 0.001 <= p50 <= p95 <= p99 <= 0.100
        assert p50 == pytest.approx(0.050, abs=0.01)
        summary = latency.summary()
        assert summary["count"] == 100
        assert summary["sum"] == pytest.approx(5.05)
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.100)

    def test_histogram_empty_quantile_is_zero(self):
        h = Histogram("empty")
        assert h.quantile(0.99) == 0.0
        assert h.summary()["count"] == 0

    def test_label_cardinality_overflow(self):
        metric = Counter("wild", max_cardinality=4)
        for i in range(10):
            metric.inc(label=str(i))
        cells = metric.cells()
        # The cap holds: 4 distinct cells plus the single overflow cell.
        assert len(cells) == 5
        assert OVERFLOW_KEY in cells
        assert cells[OVERFLOW_KEY].value == 6
        assert metric.total() == 10

    def test_format_key(self):
        metric = Counter("m")
        metric.inc(b="2", a="1")
        (key,) = metric.cells()
        assert format_key("m", key) == "m{a=1,b=2}"
        assert format_key("m", ()) == "m"

    def test_null_instrument_is_inert(self):
        cell = NULL_INSTRUMENT.bind(subfarm="x")
        assert cell is NULL_INSTRUMENT
        cell.inc()
        cell.dec()
        cell.set(5)
        cell.observe(1.0)
        assert cell.value() == 0.0
        assert cell.total() == 0.0
        assert cell.quantile(0.99) == 0.0


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_ordering_under_same_timestamp(self):
        clock = FakeClock(5.0)
        tracer = Tracer(clock)
        # All three spans start at the same virtual instant — creation
        # order must still be recoverable via seq.
        a = tracer.start_span("t1", "flow.bridge")
        b = tracer.point("t1", "flow.safety")
        c = tracer.start_span("t1", "flow.shim_rtt")
        spans = tracer.trace("t1")
        assert [s.name for s in spans] == [
            "flow.bridge", "flow.safety", "flow.shim_rtt"]
        assert a.seq < b.seq < c.seq
        assert b.finished and b.duration == 0.0
        clock.now = 7.5
        c.finish()
        assert c.duration == pytest.approx(2.5)
        # finish() is idempotent.
        clock.now = 9.0
        c.finish()
        assert c.end == 7.5

    def test_fifo_eviction(self):
        tracer = Tracer(FakeClock(), max_traces=2)
        tracer.point("t1", "a")
        tracer.point("t2", "b")
        tracer.point("t3", "c")
        assert tracer.trace_ids() == ["t2", "t3"]
        assert tracer.evicted == 1
        assert tracer.trace("t1") == []
        # Appending to a retained trace does not evict.
        tracer.point("t2", "d")
        assert tracer.evicted == 1

    def test_span_labels_sorted(self):
        tracer = Tracer(FakeClock())
        span = tracer.start_span("t", "s", zebra="1", apple="2")
        assert span.labels == (("apple", "2"), ("zebra", "1"))
        assert span.to_dict()["labels"] == {"apple": "2", "zebra": "1"}


# ----------------------------------------------------------------------
# Hub
# ----------------------------------------------------------------------
class TestHub:
    def test_ring_buffer_eviction(self):
        telemetry = Telemetry(clock=FakeClock(), hub_capacity=3)
        for i in range(5):
            telemetry.publish("tick", n=i)
        hub = telemetry.hub
        assert hub.published == 5
        assert hub.evicted == 2
        assert [e.fields["n"] for e in hub.events()] == [2, 3, 4]

    def test_subscribe_and_unsubscribe(self):
        telemetry = Telemetry(clock=FakeClock())
        seen = []
        unsubscribe = telemetry.hub.subscribe(
            lambda event: seen.append(event.kind))
        telemetry.publish("safety.trip", vlan=3)
        unsubscribe()
        telemetry.publish("safety.trip", vlan=4)
        assert seen == ["safety.trip"]

    def test_events_filtered_by_kind(self):
        telemetry = Telemetry(clock=FakeClock())
        telemetry.publish("a")
        telemetry.publish("b")
        telemetry.publish("a")
        assert len(telemetry.hub.events("a")) == 2
        assert len(telemetry.hub.events()) == 3


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
class TestExport:
    def _populated(self):
        clock = FakeClock(42.0)
        telemetry = Telemetry(clock=clock)
        telemetry.counter("flows").inc(verdict="DROP")
        telemetry.gauge("depth").set(7)
        hist = telemetry.histogram("rtt")
        hist.observe(0.01)
        hist.observe(0.02)
        span = telemetry.span("trace-1", "flow.shim_rtt", subfarm="s")
        clock.now = 43.0
        span.finish()
        telemetry.publish("safety.trip", vlan=2)
        return telemetry

    def test_json_round_trip(self):
        telemetry = self._populated()
        text = to_json(telemetry)
        parsed = json.loads(text)
        assert parsed == snapshot(telemetry)
        assert parsed["schema"] == SNAPSHOT_SCHEMA
        assert parsed["enabled"] is True
        assert parsed["time"] == 43.0
        assert parsed["counters"]["flows{verdict=DROP}"] == 1
        assert parsed["gauges"]["depth"] == 7
        entry = parsed["histograms"]["rtt"]
        assert entry["count"] == 2
        assert entry["p50"] > 0
        assert all(count > 0 for _bound, count in entry["buckets"])
        (spans,) = parsed["traces"].values()
        assert spans[0]["name"] == "flow.shim_rtt"
        assert spans[0]["start"] == 42.0 and spans[0]["end"] == 43.0
        assert parsed["hub"]["published"] == 1

    def test_json_deterministic(self):
        a, b = self._populated(), self._populated()
        assert to_json(a) == to_json(b)

    def test_disabled_snapshot_is_minimal(self):
        snap = snapshot(NULL_TELEMETRY)
        assert snap["enabled"] is False
        assert snap["counters"] == {}
        assert render_text(NULL_TELEMETRY) == "(telemetry disabled)"

    def test_render_text_sections(self):
        text = render_text(self._populated(), include_traces=True)
        assert "Counters" in text
        assert "flows{verdict=DROP}" in text
        assert "Histograms" in text
        assert "flow.shim_rtt" in text
        assert "Hub: 1 events" in text
