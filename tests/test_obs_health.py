"""Live telemetry health rules (§6.5 operator's eyes, metric-driven).

The report-based rules are covered in test_report_health.py; these
tests exercise the three telemetry rules — safety-filter trip rate,
shim-verdict p99 latency, NAT pool exhaustion — and the no-telemetry
fallback (rules silently skipped, report rules unaffected).
"""

from __future__ import annotations

import pytest

from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.reporting.health import HealthChecker
from repro.reporting.report import ActivityReport

pytestmark = pytest.mark.obs


def empty_report():
    report = ActivityReport()
    report.subfarms["sf"] = {}
    return report


def checks_of(warnings):
    return [w.check for w in warnings]


class TestSafetyTripRate:
    def _telemetry(self, admitted, tripped):
        telemetry = Telemetry(clock=lambda: 0.0)
        telemetry.counter("gw.safety.admitted").inc(admitted, subfarm="sf")
        telemetry.counter("gw.safety.trips").inc(
            tripped, subfarm="sf", reason="per-inmate")
        return telemetry

    def test_trips_over_threshold_flagged(self):
        checker = HealthChecker(expect_activity=False,
                                max_safety_trip_fraction=0.05)
        warnings = checker.check(empty_report(),
                                 telemetry=self._telemetry(90, 10))
        assert checks_of(warnings) == ["safety-trip-rate"]
        assert warnings[0].severity == "critical"
        assert warnings[0].subfarm == "sf"

    def test_trips_under_threshold_clean(self):
        checker = HealthChecker(expect_activity=False,
                                max_safety_trip_fraction=0.05)
        warnings = checker.check(empty_report(),
                                 telemetry=self._telemetry(99, 1))
        assert warnings == []


class TestShimLatency:
    def test_slow_p99_flagged(self):
        telemetry = Telemetry(clock=lambda: 0.0)
        rtt = telemetry.histogram("router.shim.rtt")
        for _ in range(100):
            rtt.observe(5.0, subfarm="sf")
        checker = HealthChecker(expect_activity=False, max_shim_p99=2.0)
        warnings = checker.check(empty_report(), telemetry=telemetry)
        assert checks_of(warnings) == ["shim-latency"]
        assert warnings[0].severity == "warn"

    def test_fast_p99_clean(self):
        telemetry = Telemetry(clock=lambda: 0.0)
        rtt = telemetry.histogram("router.shim.rtt")
        for _ in range(100):
            rtt.observe(0.05, subfarm="sf")
        checker = HealthChecker(expect_activity=False, max_shim_p99=2.0)
        assert checker.check(empty_report(), telemetry=telemetry) == []


class TestNatExhaustion:
    def _telemetry(self, used, capacity):
        telemetry = Telemetry(clock=lambda: 0.0)
        telemetry.gauge("gw.nat.pool.used").set(used, subfarm="sf")
        telemetry.gauge("gw.nat.pool.capacity").set(capacity, subfarm="sf")
        return telemetry

    def test_nearly_exhausted_pool_flagged(self):
        checker = HealthChecker(expect_activity=False,
                                max_nat_utilization=0.9)
        warnings = checker.check(empty_report(),
                                 telemetry=self._telemetry(95, 100))
        assert checks_of(warnings) == ["nat-exhaustion"]
        assert warnings[0].severity == "critical"

    def test_roomy_pool_clean(self):
        checker = HealthChecker(expect_activity=False,
                                max_nat_utilization=0.9)
        assert checker.check(empty_report(),
                             telemetry=self._telemetry(10, 100)) == []


class TestFallback:
    def test_no_telemetry_skips_live_rules(self):
        # Report rules still fire; the live rules never run.
        checker = HealthChecker(expect_activity=True)
        warnings = checker.check(empty_report())
        assert checks_of(warnings) == ["no-activity"]

    def test_disabled_telemetry_skips_live_rules(self):
        checker = HealthChecker(expect_activity=True)
        warnings = checker.check(empty_report(), telemetry=NULL_TELEMETRY)
        assert checks_of(warnings) == ["no-activity"]

    def test_enabled_but_empty_registry_is_clean(self):
        checker = HealthChecker(expect_activity=False)
        telemetry = Telemetry(clock=lambda: 0.0)
        assert checker.check(empty_report(), telemetry=telemetry) == []
