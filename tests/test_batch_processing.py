"""§6.6 batch processing: the revert/reinfect/serve-next-sample loop.

"Processing batches of malware samples follows as a simple
generalization: instead of serving the same sample repeatedly, we
maintain the batch as a list of files and serve them sequentially."

The full machinery in one scenario: auto-infection serves sample k,
the specimen runs, the activity trigger notices it has gone quiet (or
the operator reverts), the inmate reverts to the clean image, boots,
reinfects — and receives sample k+1.
"""

from __future__ import annotations

import pytest

from repro.farm import Farm, FarmConfig
from repro.inmates.images import autoinfect_image
from repro.malware.corpus import Sample, SampleBatch
from repro.policies.spambot import GrumPolicy
from repro.world.builder import ExternalWorld

pytestmark = pytest.mark.integration


def build_batch_farm(batch_size=3, seed=131):
    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("batch")
    world = ExternalWorld(farm)
    world.add_standard_victims(domains=2, mailboxes_per_domain=15)
    world.add_http_cnc("grum", "grum-cc.example",
                       world.default_campaign("grum", batch_size=8,
                                              send_interval=1.0),
                       path_prefix="/grum/")
    sub.add_catchall_sink()
    sub.add_smtp_sink()

    samples = [Sample("grum", params={"variant": i})
               for i in range(batch_size)]
    batch = SampleBatch("grum.batch.*.exe", samples)
    policy = GrumPolicy()
    executed = []
    inmate = sub.create_inmate(
        image_factory=autoinfect_image(
            on_executed=lambda host, specimen: executed.append(specimen)),
        policy=policy)
    policy.set_batch(inmate.vlan, inmate.vlan, batch)
    return farm, sub, world, batch, samples, executed, inmate


class TestBatchProcessing:
    def test_operator_reverts_walk_the_batch(self):
        (farm, sub, world, batch, samples, executed,
         inmate) = build_batch_farm()
        farm.run(until=300)
        assert len(executed) == 1
        assert executed[0].sample_id == samples[0].md5

        for expected in (1, 2):
            farm.controller.execute("revert", inmate.vlan)
            farm.run(until=farm.sim.now + 300)
            assert len(executed) == expected + 1
            assert executed[expected].sample_id == samples[expected].md5

        assert batch.served == 3
        md5s = [s.sample_id for s in executed]
        assert len(set(md5s)) == 3, "each revert got the next binary"

    def test_trigger_driven_reinfection(self):
        """The Figure 6 trigger closes the loop autonomously: when a
        specimen stops spamming, the inmate reverts and the next batch
        member is served."""
        (farm, sub, world, batch, samples, executed,
         inmate) = build_batch_farm(seed=132)
        # Configured up front, as Figure 6 does.
        sub.trigger_engine.add_text("*:25/tcp / 3min < 1 -> revert",
                                    {inmate.vlan})
        # The bot spams for a while...
        farm.run(until=200)
        assert len(executed) == 1
        # ...then its campaign dries up and it goes quiet.
        world.cnc_servers["grum"].campaign.targets = []
        executed[0].stop()
        farm.run(until=1200)
        assert inmate.reverts >= 1
        assert len(executed) >= 2
        assert executed[1].sample_id == samples[1].md5

    def test_all_infections_visible_in_verdict_annotations(self):
        (farm, sub, world, batch, samples, executed,
         inmate) = build_batch_farm(seed=133)
        farm.run(until=200)
        farm.controller.execute("revert", inmate.vlan)
        farm.run(until=500)
        annotations = [
            record.decision.annotation
            for record in sub.containment_server.verdict_log
            if record.decision.annotation.startswith("autoinfection")
        ]
        assert f"autoinfection {samples[0].md5}" in annotations
        assert f"autoinfection {samples[1].md5}" in annotations
