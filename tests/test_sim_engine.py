"""The discrete-event engine: ordering, cancellation, determinism."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import Process, Timer


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for name in "abcde":
            sim.schedule(1.0, fired.append, name)
        sim.run()
        assert fired == list("abcde")

    def test_run_until_stops_clock_exactly(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        assert sim.run(until=5.0) == 5.0
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 5:
                sim.schedule(1.0, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3, 4, 5]

    def test_max_events_bound(self):
        sim = Simulator()
        for _ in range(100):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=10)
        assert sim.events_processed == 10


class TestDeterminism:
    def test_rng_streams_independent_and_stable(self):
        sim1, sim2 = Simulator(seed=9), Simulator(seed=9)
        a1 = [sim1.rng("a").random() for _ in range(5)]
        # Interleave another stream in sim2; "a" must not be perturbed.
        sim2.rng("b").random()
        a2 = [sim2.rng("a").random() for _ in range(5)]
        assert a1 == a2

    def test_different_seeds_differ(self):
        assert Simulator(seed=1).rng("x").random() != \
            Simulator(seed=2).rng("x").random()


class TestTimer:
    def test_fires_once(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 5.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run(until=20.0)
        assert fired == [5.0]

    def test_restart_postpones(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 5.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(3.0, timer.restart)
        sim.run(until=20.0)
        assert fired == [8.0]

    def test_double_start_raises(self):
        sim = Simulator()
        timer = Timer(sim, 1.0, lambda: None)
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()


class TestProcess:
    def test_periodic_ticks(self):
        sim = Simulator()
        ticks = []
        process = Process(sim, 10.0, lambda: ticks.append(sim.now))
        process.start()
        sim.run(until=35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_stop_halts(self):
        sim = Simulator()
        ticks = []
        process = Process(sim, 10.0, lambda: ticks.append(sim.now))
        process.start()
        sim.schedule(25.0, process.stop)
        sim.run(until=100.0)
        assert ticks == [10.0, 20.0]

    def test_callable_interval(self):
        sim = Simulator()
        gaps = iter([1.0, 2.0, 4.0, 100.0])
        ticks = []
        process = Process(sim, lambda: next(gaps),
                          lambda: ticks.append(sim.now))
        process.start()
        sim.run(until=10.0)
        assert ticks == [1.0, 3.0, 7.0]


class TestQueueKernel:
    """The event-loop kernel: O(1) pending, lazy-cancel compaction,
    and step()'s parity with run()."""

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None)
                  for i in range(10)]
        assert sim.pending == 10
        for event in events[:4]:
            event.cancel()
        assert sim.pending == 6

    def test_compaction_purges_dead_events(self):
        sim = Simulator()
        keep = [sim.schedule(1000.0 + i, lambda: None) for i in range(10)]
        doomed = [sim.schedule(float(i + 1), lambda: None)
                  for i in range(sim.COMPACT_MIN_QUEUE * 2)]
        for event in doomed:
            event.cancel()
        # Compaction fires whenever the dead majority is reached above
        # the size floor, so the queue must have shrunk far below the
        # total scheduled; the live events all survive.
        total = len(keep) + len(doomed)
        assert len(sim._queue) < total // 2
        assert sim.pending == len(keep)
        live = [e for e in sim._queue if not e.cancelled]
        assert len(live) == len(keep)

    def test_compaction_preserves_firing_order(self):
        sim = Simulator()
        fired = []
        for i in range(100):
            sim.schedule(float(i + 1), fired.append, i)
        doomed = [sim.schedule(0.5, lambda: None)
                  for _ in range(200)]
        for event in doomed:
            event.cancel()
        sim.run()
        assert fired == list(range(100))

    def test_cancel_after_fire_is_noop_for_accounting(self):
        sim = Simulator()
        grabbed = []
        event = sim.schedule(1.0, lambda: None)
        grabbed.append(event)
        sim.schedule(2.0, lambda: None)
        sim.run()
        # Cancelling an already-fired event must not corrupt the dead
        # counter (it is cleared from the queue at pop time).
        event.cancel()
        assert sim.pending == 0
        sim.schedule(3.0, lambda: None)
        assert sim.pending == 1

    def test_events_processed_counts_fired_only(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        cancelled = sim.schedule(0.5, lambda: None)
        cancelled.cancel()
        sim.run()
        assert sim.events_processed == 5

    def test_step_matches_run_instruments(self):
        from repro.obs.telemetry import Telemetry

        results = []
        for use_step in (False, True):
            sim = Simulator()
            telemetry = Telemetry(clock=lambda: sim.now)
            sim.attach_telemetry(telemetry, profile_callbacks=True)
            for i in range(6):
                sim.schedule(float(i + 1), lambda: None, label="tick")
            if use_step:
                while sim.step():
                    pass
            else:
                sim.run()
            results.append({
                "fired": telemetry.counter("sim.events.fired").bind().value,
                "processed": sim.events_processed,
                "profiled": telemetry.histogram(
                    "sim.callback.wall_time").bind(label="tick").count,
                "now": sim.now,
            })
        run_result, step_result = results
        assert step_result == run_result

    def test_step_returns_false_when_idle(self):
        sim = Simulator()
        assert sim.step() is False
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True
        assert sim.now == 1.0
        assert sim.step() is False
