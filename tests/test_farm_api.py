"""Top-level Farm API: lifecycle, errors, misc plumbing."""

from __future__ import annotations

import pytest

import repro
from repro import Farm, FarmConfig
from repro.core.policy import DefaultDeny
from repro.inmates.images import idle_image


class TestFarmApi:
    def test_package_reexports(self):
        assert repro.Farm is Farm
        assert repro.FarmConfig is FarmConfig
        assert isinstance(repro.__version__, str)
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_duplicate_subfarm_name_rejected(self):
        farm = Farm(FarmConfig(seed=1))
        farm.create_subfarm("a")
        with pytest.raises(ValueError):
            farm.create_subfarm("a")

    def test_run_respects_max_events(self):
        farm = Farm(FarmConfig(seed=1))
        sub = farm.create_subfarm("a")
        sub.create_inmate(image_factory=idle_image())
        farm.run(until=600, max_events=5)
        assert farm.sim.events_processed == 5

    def test_remove_inmate_releases_resources(self):
        farm = Farm(FarmConfig(seed=1))
        sub = farm.create_subfarm("a")
        inmate = sub.create_inmate(image_factory=idle_image())
        farm.run(until=60)
        vlan = inmate.vlan
        internal = sub.nat.internal_for(vlan)
        assert internal is not None
        sub.remove_inmate(vlan)
        assert vlan not in sub.inmates
        assert farm.controller.inmate(vlan) is None
        assert sub.nat.internal_for(vlan) is None
        assert farm.gateway.router_for_vlan(vlan) is None
        # The VLAN returns to the pool (reused after the pool cycles
        # around, like ephemeral ports — not immediately).
        assert vlan not in farm.vlan_pool.allocated_ids()
        replacement = sub.create_inmate(image_factory=idle_image())
        assert replacement.vlan != vlan

    def test_specific_vlan_request(self):
        farm = Farm(FarmConfig(seed=1))
        sub = farm.create_subfarm("a")
        inmate = sub.create_inmate(image_factory=idle_image(), vlan=42)
        assert inmate.vlan == 42
        with pytest.raises(Exception):
            sub.create_inmate(image_factory=idle_image(), vlan=42)

    def test_policy_per_inmate_assignment(self):
        farm = Farm(FarmConfig(seed=1))
        sub = farm.create_subfarm("a")
        policy = DefaultDeny()
        inmate = sub.create_inmate(image_factory=idle_image(),
                                   policy=policy)
        assert sub.policy_map.resolve(inmate.vlan) is policy

    def test_deterministic_replay(self):
        """Same seed, same program -> byte-identical activity."""
        def run():
            farm = Farm(FarmConfig(seed=99))
            sub = farm.create_subfarm("a")
            sub.create_inmate(image_factory=idle_image())
            farm.run(until=120)
            return (farm.sim.events_processed,
                    len(sub.router.trace.records),
                    str(sub.nat.bindings()))

        assert run() == run()
