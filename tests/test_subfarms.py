"""Figures 1 and 3: architecture separation and parallel subfarms."""

from __future__ import annotations

import pytest

from repro.core.policy import AllowAll, DefaultDeny, ReflectAll
from repro.farm import Farm, FarmConfig
from repro.inmates.images import idle_image
from repro.net.addresses import IPv4Address
from tests.test_containment_end_to_end import (
    EXTERNAL_WEB_IP,
    http_fetch_image,
    http_server,
)

pytestmark = pytest.mark.integration


class TestFigure3Subfarms:
    def build(self, seed=19):
        """Three subfarms: deployment (forward), development (reflect),
        and a default-deny one — different policies, same gateway."""
        farm = Farm(FarmConfig(seed=seed))
        web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
        served = http_server(web)

        subs, results = {}, {}
        for name, policy in (
            ("deployment", AllowAll()),
            ("development", ReflectAll()),
            ("locked", DefaultDeny()),
        ):
            sub = farm.create_subfarm(name)
            sub.add_catchall_sink()
            image, res = http_fetch_image()
            sub.create_inmate(image_factory=image, policy=policy)
            subs[name] = sub
            results[name] = res
        return farm, subs, results, served

    def test_disjoint_vlan_ranges(self):
        farm, subs, _results, _served = self.build()
        vlan_sets = [sub.router.vlan_ids for sub in subs.values()]
        for i, a in enumerate(vlan_sets):
            for b in vlan_sets[i + 1:]:
                assert not (a & b)

    def test_policies_apply_independently(self):
        farm, subs, results, served = self.build()
        farm.run(until=120)
        # Deployment subfarm reached the web server...
        deployment = [r for r in results["deployment"]
                      if not isinstance(r, str)]
        assert len(deployment) == 1
        # ...development got reflected into its own sink...
        assert subs["development"].sinks["sink"].connections_accepted == 1
        assert [r for r in results["development"]
                if not isinstance(r, str)] == []
        # ...and the locked subfarm saw a reset.
        assert "RESET" in results["locked"] or "FAIL" in results["locked"]
        # Exactly one request total escaped (the deployment one).
        assert len(served) == 1

    def test_separate_containment_servers(self):
        farm, subs, _results, _served = self.build()
        farm.run(until=120)
        assert subs["deployment"].containment_server.verdict_counts == \
            {"FORWARD": 1}
        assert subs["development"].containment_server.verdict_counts == \
            {"REFLECT": 1}
        assert subs["locked"].containment_server.verdict_counts == \
            {"DROP": 1}

    def test_separate_traces(self):
        farm, subs, _results, _served = self.build()
        farm.run(until=120)
        for name, sub in subs.items():
            vlans_in_trace = {
                record.frame.vlan
                for record in sub.router.trace.records
                if record.frame.vlan is not None
            }
            assert vlans_in_trace <= sub.router.vlan_ids, (
                f"subfarm {name} trace leaked another subfarm's VLANs"
            )

    def test_internal_address_reuse_across_subfarms(self):
        """Each subfarm has its own RFC 1918 space; bindings never
        collide at the gateway because flows are per-subfarm."""
        farm, subs, _results, _served = self.build()
        farm.run(until=120)
        internals = [
            sub.nat.internal_for(next(iter(sub.router.vlan_ids)))
            for sub in subs.values()
        ]
        assert all(ip is not None for ip in internals)
        networks = {str(ip).rsplit(".", 2)[0] for ip in internals}
        assert len(networks) == 3  # 10.100/, 10.101/, 10.102/


class TestFigure1Separation:
    def test_inmates_cannot_reach_management_network(self):
        """The management network is physically separate: an inmate
        addressing the controller is contained like any other flow
        (the handshake it sees is the containment server's synthesized
        one) and no packet of its ever reaches the controller host."""
        farm = Farm(FarmConfig(seed=23))
        sub = farm.create_subfarm("test")
        sub.add_catchall_sink()
        outcome = []
        before = farm.controller_host.packets_received

        def image(host):
            from repro.services.dhcp import DhcpClient

            def attack(configured_host):
                conn = configured_host.tcp.connect(
                    farm.controller_ip, 9048)
                conn.on_established = lambda c: c.send(b"terminate 2")
                conn.on_fail = lambda c: outcome.append("refused")
                conn.on_reset = lambda c: outcome.append("reset")

            DhcpClient(host, on_configured=attack).start()

        sub.create_inmate(image_factory=image, policy=DefaultDeny())
        farm.run(until=120)
        # The flow was dropped, and the controller host saw nothing.
        assert "reset" in outcome or "refused" in outcome
        assert farm.controller_host.packets_received == before
        assert farm.controller.actions_executed == []
        counts = sub.containment_server.verdict_counts
        assert counts.get("DROP", 0) == 1

    def test_lifecycle_messages_do_cross_management_network(self):
        farm = Farm(FarmConfig(seed=23))
        sub = farm.create_subfarm("test")
        inmate = sub.create_inmate(image_factory=idle_image())
        farm.run(until=60)
        assert inmate.state.value == "running"
        # The containment server's out-of-band interface carries the
        # text protocol to the controller.
        sub.containment_server.issue_lifecycle("stop", inmate.vlan)
        farm.run(until=70)
        assert inmate.state.value == "stopped"
        assert farm.controller.actions_executed[-1][1:] == ("stop",
                                                            inmate.vlan)

    def test_unknown_vlan_lifecycle_ignored(self):
        farm = Farm(FarmConfig(seed=23))
        sub = farm.create_subfarm("test")
        sub.containment_server.issue_lifecycle("revert", 999)
        farm.run(until=10)
        assert farm.controller.unknown_targets == 1
