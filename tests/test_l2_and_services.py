"""Link layer (switch, VLAN isolation, ARP) and infrastructure
services (DHCP, DNS resolver, sinks)."""

from __future__ import annotations

import pytest

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.host import Host
from repro.net.link import Link, PortMode, Switch
from repro.net.packet import EthernetFrame, IPv4Packet, UDPDatagram
from repro.sim.engine import Simulator
from tests.helpers import lan


def attach_host(sim, switch, name, ip, vlan):
    host = Host(sim, name, ip=IPv4Address(ip))
    Link(sim, host.attach_port(), switch.attach_port(access_vlan=vlan))
    return host


class TestSwitch:
    def test_same_vlan_hosts_communicate(self):
        sim = Simulator()
        switch = Switch(sim)
        a = attach_host(sim, switch, "a", "10.0.0.1", 5)
        b = attach_host(sim, switch, "b", "10.0.0.2", 5)
        received = []
        b.udp.bind(9, lambda h, p, d: received.append(d.payload))
        a.udp.sendto(b"hello", b.ip, 9)
        sim.run(until=1.0)
        assert received == [b"hello"]

    def test_vlan_isolation_is_strict(self):
        """Per-inmate VLANs (§5.2): no crosstalk at the switch, ever."""
        sim = Simulator()
        switch = Switch(sim)
        a = attach_host(sim, switch, "a", "10.0.0.1", 5)
        b = attach_host(sim, switch, "b", "10.0.0.2", 6)  # different VLAN
        received = []
        b.udp.bind(9, lambda h, p, d: received.append(d.payload))
        a.udp.sendto(b"leak?", b.ip, 9)
        sim.run(until=2.0)
        assert received == []

    def test_learning_avoids_flooding(self):
        sim = Simulator()
        switch = Switch(sim)
        a = attach_host(sim, switch, "a", "10.0.0.1", 1)
        b = attach_host(sim, switch, "b", "10.0.0.2", 1)
        c = attach_host(sim, switch, "c", "10.0.0.3", 1)
        b.udp.bind(9, lambda h, p, d: None)
        # First exchange teaches the switch both MACs...
        a.udp.sendto(b"x", b.ip, 9)
        sim.run(until=1.0)
        flooded_before = switch.frames_flooded
        a.udp.sendto(b"y", b.ip, 9)
        sim.run(until=2.0)
        # ...so the second unicast is switched, not flooded.
        assert switch.frames_switched > 0
        assert switch.frames_flooded == flooded_before

    def test_trunk_carries_tags(self):
        sim = Simulator()
        switch = Switch(sim)
        a = attach_host(sim, switch, "a", "10.0.0.1", 7)

        captured = []

        class TrunkSniffer:
            def attach_port(self):
                from repro.net.link import Port
                self.port = Port(self, "sniffer")
                return self.port

            def receive_frame(self, frame, port):
                captured.append(frame)

        sniffer = TrunkSniffer()
        Link(sim, sniffer.attach_port(),
             switch.attach_port(mode=PortMode.TRUNK))
        a.udp.sendto(b"probe", IPv4Address("10.0.0.99"), 9)
        sim.run(until=1.0)
        tagged = [f for f in captured if f.vlan == 7]
        assert tagged, "trunk frames must carry the access VLAN tag"


class TestArp:
    def test_hosts_resolve_each_other(self):
        sim, _switch, (a, b) = lan()
        a.udp.sendto(b"x", b.ip, 9)
        sim.run(until=1.0)
        assert b.ip in a.arp_cache_snapshot()
        # b learned a from the request.
        assert a.ip in b.arp_cache_snapshot()

    def test_pending_packets_flush_after_resolution(self):
        sim, _switch, (a, b) = lan()
        received = []
        b.udp.bind(9, lambda h, p, d: received.append(d.payload))
        for i in range(3):
            a.udp.sendto(f"m{i}".encode(), b.ip, 9)
        sim.run(until=1.0)
        assert received == [b"m0", b"m1", b"m2"]


class TestDhcpThroughFarm:
    def test_lease_has_router_and_dns(self):
        from repro.farm import Farm, FarmConfig
        from repro.inmates.images import idle_image

        farm = Farm(FarmConfig(seed=2))
        sub = farm.create_subfarm("dhcp-test")
        inmate = sub.create_inmate(image_factory=idle_image())
        farm.run(until=60)
        host = inmate.host
        assert host.ip is not None
        assert host.gateway_ip == sub.gateway_ip
        assert host.dns_server == sub.dns_ip
        assert sub.router.counters["dhcp_leases"] >= 1

    def test_reverted_inmate_reacquires_address(self):
        from repro.farm import Farm, FarmConfig
        from repro.inmates.images import idle_image

        farm = Farm(FarmConfig(seed=2))
        sub = farm.create_subfarm("dhcp-test")
        inmate = sub.create_inmate(image_factory=idle_image())
        farm.run(until=60)
        first_host = inmate.host
        inmate.revert()
        farm.run(until=200)
        assert inmate.host is not first_host
        assert inmate.host.ip is not None
        # Same VLAN keeps the same internal address binding.
        assert inmate.host.ip == first_host.ip


class TestResolverThroughFarm:
    def test_recursion_to_world_authority(self):
        from repro.farm import Farm, FarmConfig
        from repro.world.builder import ExternalWorld
        from repro.net.dns import StubResolverClient

        farm = Farm(FarmConfig(seed=3))
        sub = farm.create_subfarm("dns-test")
        world = ExternalWorld(farm)
        world.dns.add_a("cnc.example", IPv4Address("198.51.100.77"))

        # A service host inside the subfarm queries the resolver.
        probe = sub.add_service_host("probe")
        results = []
        client = StubResolverClient(probe, sub.dns_ip)
        client.resolve("cnc.example", lambda recs: results.append(recs))
        farm.run(until=10)
        assert results and results[0]
        assert str(results[0][0].address) == "198.51.100.77"
        assert sub.resolver.recursions == 1

    def test_cache_prevents_second_recursion(self):
        from repro.farm import Farm, FarmConfig
        from repro.world.builder import ExternalWorld
        from repro.net.dns import StubResolverClient

        farm = Farm(FarmConfig(seed=3))
        sub = farm.create_subfarm("dns-test")
        world = ExternalWorld(farm)
        world.dns.add_a("cnc.example", IPv4Address("198.51.100.77"))
        probe = sub.add_service_host("probe")
        client = StubResolverClient(probe, sub.dns_ip)
        results = []
        client.resolve("cnc.example", lambda recs: results.append(recs))
        farm.run(until=10)
        client.resolve("cnc.example", lambda recs: results.append(recs))
        farm.run(until=20)
        assert len(results) == 2 and results[1]
        assert sub.resolver.recursions == 1

    def test_nxdomain_for_unknown_names(self):
        from repro.farm import Farm, FarmConfig
        from repro.world.builder import ExternalWorld
        from repro.net.dns import StubResolverClient

        farm = Farm(FarmConfig(seed=3))
        sub = farm.create_subfarm("dns-test")
        ExternalWorld(farm)
        probe = sub.add_service_host("probe")
        client = StubResolverClient(probe, sub.dns_ip)
        results = []
        client.resolve("no-such-host.example",
                       lambda recs: results.append(recs))
        farm.run(until=10)
        assert results == [[]]


class TestCatchAllSink:
    def test_accepts_any_port_and_any_destination(self):
        sim = Simulator()
        switch = Switch(sim)
        client = attach_host(sim, switch, "client", "10.0.0.1", 1)
        sink_host = attach_host(sim, switch, "sink", "10.0.0.2", 1)
        sink_host.accept_any_ip = True
        from repro.services.sink import CatchAllSink

        sink = CatchAllSink(sink_host)
        for port in (25, 80, 6667, 31337):
            conn = client.tcp.connect(sink_host.ip, port)
            conn.on_established = (
                lambda c, p=port: c.send(f"probe {p}".encode()))
        sim.run(until=5.0)
        assert sink.connections_accepted == 4
        assert sorted(sink.by_destination_port()) == [25, 80, 6667, 31337]
        assert sink.payloads_for_port(80) == [b"probe 80"]
