"""Worker-pool failure modes: shard timeout, worker crash mid-task,
and oversubscribed pools.  Every failure must surface as a structured
error in the merged result — never a hang, never a lost campaign.

These tests start real spawn-based worker processes; they are kept
small so the whole module stays within a few seconds.
"""

from __future__ import annotations

import time

import pytest

from repro.parallel import Campaign, ShardSpec, run_campaign

NOOP = "repro.parallel.tasks:noop_shard"
CRASH = "repro.parallel.tasks:crashing_shard"
SLEEP = "repro.parallel.tasks:sleepy_shard"

pytestmark = pytest.mark.integration


def test_shard_timeout_kills_only_that_shard():
    campaign = Campaign("timeouts", [
        ShardSpec(0, NOOP, {"seed": 1}),
        ShardSpec(1, SLEEP, {"seed": 2, "wall_seconds": 60.0},
                  timeout=1.0),
        ShardSpec(2, NOOP, {"seed": 3}),
    ])
    started = time.monotonic()
    result = run_campaign(campaign, workers=2, chunk_size=1)
    elapsed = time.monotonic() - started
    assert elapsed < 30.0, "timeout enforcement must not hang"
    assert len(result.shard_results) == 3
    assert [r.ok for r in result.shard_results] == [True, False, True]
    failure = result.failures[0]
    assert failure["shard"] == 1
    assert failure["kind"] == "timeout"
    assert "timeout" in failure["message"]


def test_worker_crash_fails_only_its_shard():
    campaign = Campaign("crashes", [
        ShardSpec(0, NOOP, {"seed": 1}),
        ShardSpec(1, CRASH, {"seed": 2}),
        ShardSpec(2, NOOP, {"seed": 3}),
        ShardSpec(3, NOOP, {"seed": 4}),
    ])
    result = run_campaign(campaign, workers=2, chunk_size=1)
    assert len(result.shard_results) == 4
    assert not result.ok
    failure = result.failures[0]
    assert failure["shard"] == 1
    assert failure["kind"] == "crash"
    assert "died" in failure["message"]
    survivors = [r for r in result.shard_results if r.index != 1]
    assert all(r.ok for r in survivors)


def test_crash_mid_chunk_requeues_the_rest_of_the_chunk():
    # One chunk of three shards with the crasher in the middle: the
    # in-flight shard fails, the unstarted tail is requeued and still
    # completes on a respawned worker.
    campaign = Campaign("chunked", [
        ShardSpec(0, NOOP, {"seed": 1}),
        ShardSpec(1, CRASH, {"seed": 2}),
        ShardSpec(2, NOOP, {"seed": 3}),
    ])
    result = run_campaign(campaign, workers=1 + 1, chunk_size=3)
    assert len(result.shard_results) == 3
    assert [r.ok for r in result.shard_results] == [True, False, True]
    assert result.failures[0]["kind"] == "crash"


def test_oversubscribed_pool_completes_everything():
    # Far more shards than workers: chunking and warm reuse must chew
    # through the backlog with no loss and no duplicate results.
    campaign = Campaign.seed_sweep("backlog", NOOP, count=24,
                                   base_seed=5)
    result = run_campaign(campaign, workers=2)
    assert result.ok
    assert [r.index for r in result.shard_results] == list(range(24))
    serial = run_campaign(campaign, workers=1)
    assert serial.digest == result.digest


def test_every_shard_crashing_still_terminates():
    campaign = Campaign("all-crash", [
        ShardSpec(index, CRASH, {"seed": index}) for index in range(3)
    ])
    started = time.monotonic()
    result = run_campaign(campaign, workers=2, chunk_size=1)
    assert time.monotonic() - started < 60.0
    assert len(result.shard_results) == 3
    assert not result.ok
    assert all(not r.ok for r in result.shard_results)
    kinds = {f["kind"] for f in result.failures}
    assert kinds <= {"crash", "pool"}
    assert "crash" in kinds


def test_default_timeout_applies_to_unmarked_shards():
    campaign = Campaign("default-timeout", [
        ShardSpec(0, SLEEP, {"seed": 1, "wall_seconds": 60.0}),
        ShardSpec(1, NOOP, {"seed": 2}),
    ])
    result = run_campaign(campaign, workers=2, chunk_size=1,
                          default_timeout=1.0)
    assert result.failures[0]["shard"] == 0
    assert result.failures[0]["kind"] == "timeout"
    assert result.shard_results[1].ok
