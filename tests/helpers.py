"""Shared test fixtures and topology builders."""

from __future__ import annotations

from typing import List, Tuple

from repro.net.addresses import IPv4Address
from repro.net.host import Host
from repro.net.link import Link, Switch
from repro.sim.engine import Simulator


def lan(
    num_hosts: int = 2, seed: int = 7, subnet: str = "10.0.0."
) -> Tuple[Simulator, Switch, List[Host]]:
    """A flat LAN: ``num_hosts`` hosts on one access-VLAN switch."""
    sim = Simulator(seed=seed)
    switch = Switch(sim, "lan")
    hosts = []
    for i in range(num_hosts):
        host = Host(sim, f"h{i}", ip=IPv4Address(f"{subnet}{i + 1}"))
        Link(sim, host.attach_port(), switch.attach_port(access_vlan=1))
        hosts.append(host)
    return sim, switch, hosts
