"""§4 versatility: IRC C&C and DGA families, hosted without any
farm redesign."""

from __future__ import annotations

import pytest

from repro.farm import Farm, FarmConfig
from repro.inmates.images import autoinfect_image
from repro.malware.corpus import Sample
from repro.malware.ircbot import dga_domains
from repro.policies.ircbot import DgaBotPolicy, IrcBotPolicy
from repro.world.builder import ExternalWorld
from repro.world.irc_cnc import IrcCncServer, IrcHerder

pytestmark = pytest.mark.integration


class TestDgaAlgorithm:
    def test_deterministic_per_seed_and_day(self):
        assert dga_domains("s", 100, 5) == dga_domains("s", 100, 5)
        assert dga_domains("s", 100, 5) != dga_domains("s", 101, 5)
        assert dga_domains("a", 100, 5) != dga_domains("b", 100, 5)

    def test_domains_are_valid_labels(self):
        for domain in dga_domains("seed", 1, 50):
            label = domain.split(".")[0]
            assert len(label) == 12
            assert all(c in "0123456789abcdef" for c in label)


def build_irc_farm(seed=101):
    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("ircstudy")
    world = ExternalWorld(farm)
    world.add_standard_victims(domains=2, mailboxes_per_domain=20)

    irc_host = farm.add_external_host("irc-cnc",
                                      str(world.allocate_ip("198.51.100.0")))
    world.dns.add_a("irc-cnc.example", irc_host.ip)
    server = IrcCncServer(irc_host)
    herder = IrcHerder(farm.sim, server,
                       world.default_campaign("ircbot", batch_size=10,
                                              send_interval=1.0),
                       command_interval=90.0)
    herder.start()

    sub.add_catchall_sink()
    sink = sub.add_smtp_sink()
    policy = IrcBotPolicy()
    inmate = sub.create_inmate(image_factory=autoinfect_image(),
                               policy=policy)
    policy.set_sample(inmate.vlan, inmate.vlan, Sample("ircbot"))
    return farm, sub, world, server, herder, inmate, sink


class TestIrcBotWorkflow:
    def test_irc_cnc_forwarded_and_spam_contained(self):
        farm, sub, world, server, herder, inmate, sink = build_irc_farm()
        farm.run(until=600)
        specimen = getattr(inmate.host, "specimen", None)
        assert specimen is not None and specimen.family == "ircbot"
        # The bot registered and sat in the channel...
        assert server.connections_accepted >= 1
        assert "#cmd" in server.network.channels
        # ...received herder commands...
        assert herder.commands_issued >= 1
        assert specimen.stats.get("irc_commands", 0) >= 1
        # ...and its spam never escaped.
        assert world.total_spam_delivered() == 0
        assert sink.data_transfers > 10
        counts = sub.containment_server.verdict_counts
        assert counts.get("FORWARD", 0) >= 1   # the IRC connection
        assert counts.get("REFLECT", 0) > 10   # SMTP

    def test_irc_connection_stays_open_across_commands(self):
        farm, sub, world, server, herder, inmate, sink = build_irc_farm()
        farm.run(until=700)
        specimen = getattr(inmate.host, "specimen", None)
        # Multiple commands, but only one forwarded IRC flow: the
        # channel connection persists (this is what makes IRC C&C
        # different from the polling HTTP families).
        assert specimen.stats.get("irc_commands", 0) >= 2
        assert sub.containment_server.verdict_counts.get("FORWARD") == 1


class TestDgaBotWorkflow:
    def test_dga_walk_finds_registered_domain(self):
        farm = Farm(FarmConfig(seed=103))
        sub = farm.create_subfarm("dgastudy")
        world = ExternalWorld(farm)
        world.add_standard_victims(domains=2, mailboxes_per_domain=20)

        # The botmaster registered the 8th domain of the day.
        day, seed_text = 13337, "gq-dga-v1"
        domains = dga_domains(seed_text, day, 32)
        registered = domains[7]
        world.add_http_cnc("dgabot", registered,
                           world.default_campaign("dgabot", batch_size=10,
                                                  send_interval=1.0),
                           path_prefix="/dga/")

        sub.add_catchall_sink()
        sink = sub.add_smtp_sink()
        policy = DgaBotPolicy()
        inmate = sub.create_inmate(image_factory=autoinfect_image(),
                                   policy=policy)
        policy.set_sample(inmate.vlan, inmate.vlan,
                          Sample("dgabot", params={"epoch_day": day,
                                                   "dga_seed": seed_text}))
        farm.run(until=600)

        specimen = getattr(inmate.host, "specimen", None)
        assert specimen is not None
        # The NXDOMAIN storm preceding each hit: exactly 7 unregistered
        # names are walked before the registered 8th, every fetch round.
        hits = specimen.stats.get("dga_hits", 0)
        assert hits >= 1
        assert specimen.stats.get("dga_nxdomains", 0) == 7 * hits
        assert sub.resolver.nxdomains >= 7
        # Then normal C&C + contained spam.
        assert specimen.stats.get("cnc_fetches", 0) >= 1
        assert world.total_spam_delivered() == 0
        assert sink.data_transfers > 10
