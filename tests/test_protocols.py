"""Application protocol engines: DNS, HTTP, SMTP, FTP, SOCKS."""

from __future__ import annotations

import pytest

from repro.net.addresses import IPv4Address
from repro.net.dns import (
    DnsMessage,
    DnsRecord,
    QTYPE_A,
    QTYPE_MX,
    RCODE_NXDOMAIN,
)
from repro.net.ftp import FtpClientEngine, FtpServerEngine
from repro.net.http import HttpParser, HttpRequest, HttpResponse
from repro.net.smtp import (
    SmtpClientEngine,
    SmtpServerEngine,
    Strictness,
    parse_address,
)
from repro.net.socks import REPLY_GRANTED, Socks4Reply, Socks4Request


class TestDns:
    def test_query_round_trip(self):
        query = DnsMessage.query(42, "cc.badguys.example", QTYPE_A)
        parsed = DnsMessage.from_bytes(query.to_bytes())
        assert parsed.txid == 42
        assert parsed.question.name == "cc.badguys.example"
        assert not parsed.is_response

    def test_response_with_a_record(self):
        query = DnsMessage.query(7, "www.example.com")
        reply = query.reply([DnsRecord.a("www.example.com", IPv4Address("198.51.100.7"))])
        parsed = DnsMessage.from_bytes(reply.to_bytes())
        assert parsed.is_response
        assert str(parsed.answers[0].address) == "198.51.100.7"

    def test_mx_record_round_trip(self):
        query = DnsMessage.query(9, "victim.example", QTYPE_MX)
        reply = query.reply([DnsRecord.mx("victim.example", "mx1.victim.example", 5)])
        parsed = DnsMessage.from_bytes(reply.to_bytes())
        assert parsed.answers[0].exchange == "mx1.victim.example"
        assert parsed.answers[0].priority == 5

    def test_nxdomain(self):
        query = DnsMessage.query(1, "nope.example")
        reply = query.reply([], rcode=RCODE_NXDOMAIN)
        parsed = DnsMessage.from_bytes(reply.to_bytes())
        assert parsed.rcode == RCODE_NXDOMAIN
        assert parsed.answers == []


class TestHttp:
    def test_request_round_trip_through_parser(self):
        request = HttpRequest("GET", "/bot.exe", {"Host": "cc.example"})
        parser = HttpParser("request")
        (parsed,) = parser.feed(request.to_bytes())
        assert parsed.method == "GET"
        assert parsed.path == "/bot.exe"
        assert parsed.host_header == "cc.example"

    def test_parser_handles_partial_delivery(self):
        request = HttpRequest("POST", "/c2", body=b"payload-bytes")
        raw = request.to_bytes()
        parser = HttpParser("request")
        messages = []
        for i in range(len(raw)):
            messages.extend(parser.feed(raw[i:i + 1]))
        assert len(messages) == 1
        assert messages[0].body == b"payload-bytes"

    def test_pipelined_requests(self):
        raw = (
            HttpRequest("GET", "/a").to_bytes()
            + HttpRequest("GET", "/b").to_bytes()
        )
        parser = HttpParser("request")
        messages = parser.feed(raw)
        assert [m.path for m in messages] == ["/a", "/b"]

    def test_response_with_content_length(self):
        response = HttpResponse(200, body=b"MALWARE")
        parser = HttpParser("response")
        (parsed,) = parser.feed(response.to_bytes())
        assert parsed.status == 200
        assert parsed.body == b"MALWARE"

    def test_response_framed_by_close(self):
        raw = b"HTTP/1.1 200 OK\r\n\r\npartial body then close"
        parser = HttpParser("response")
        assert parser.feed(raw) == []
        finished = parser.finish()
        assert finished is not None
        assert finished.body == b"partial body then close"

    def test_404_reason_matches_paper_figure(self):
        # Figure 5 shows "HTTP/1.1 404 NOT FOUND".
        assert b"404 NOT FOUND" in HttpResponse(404).to_bytes()

    def test_header_case_insensitive_access(self):
        request = HttpRequest("GET", "/", {"user-agent": "bot/1.0"})
        assert request.header("User-Agent") == "bot/1.0"


def run_smtp_dialogue(server_kwargs=None, client_kwargs=None, messages=None):
    """Pump an SMTP client and server against each other in memory."""
    to_client, to_server = [], []
    server = SmtpServerEngine(send=to_client.append, **(server_kwargs or {}))
    client = SmtpClientEngine(
        send=to_server.append,
        messages=messages or [
            {"mail_from": "a@spam.example", "rcpt_to": ["v@victim.example"],
             "body": b"buy pills"},
        ],
        **(client_kwargs or {}),
    )
    # Alternate until quiescent.
    for _ in range(200):
        if not to_client and not to_server:
            break
        while to_client:
            client.feed(to_client.pop(0))
        while to_server:
            server.feed(to_server.pop(0))
    return server, client


class TestSmtp:
    def test_clean_transaction_delivers_message(self):
        server, client = run_smtp_dialogue()
        assert client.sent == 1
        assert len(server.transactions) == 1
        txn = server.transactions[0]
        assert txn.mail_from == "a@spam.example"
        assert txn.rcpt_to == ["v@victim.example"]
        assert txn.body == b"buy pills"

    def test_multiple_messages_one_session(self):
        messages = [
            {"mail_from": "a@s.example", "rcpt_to": [f"v{i}@t.example"], "body": b"x"}
            for i in range(5)
        ]
        server, client = run_smtp_dialogue(messages=messages)
        assert client.sent == 5
        assert len(server.transactions) == 5

    def test_strict_server_rejects_bare_addresses(self):
        # The §7.1 "Protocol violations" lesson: connection-level
        # accounting looks healthy, content never arrives.
        server, client = run_smtp_dialogue(
            server_kwargs={"strictness": Strictness.STRICT},
            client_kwargs={"bare_addresses": True},
        )
        assert client.sent == 0
        assert server.transactions == []
        assert server.syntax_errors > 0

    def test_lenient_server_accepts_bare_addresses(self):
        server, client = run_smtp_dialogue(
            client_kwargs={"bare_addresses": True},
        )
        assert client.sent == 1
        assert len(server.transactions) == 1

    def test_lenient_server_accepts_missing_colon(self):
        server, client = run_smtp_dialogue(client_kwargs={"no_colon": True})
        assert len(server.transactions) == 1

    def test_repeated_helo_tolerated_when_lenient(self):
        messages = [
            {"mail_from": "a@s.example", "rcpt_to": ["v@t.example"], "body": b"x"}
            for _ in range(3)
        ]
        server, client = run_smtp_dialogue(
            messages=messages, client_kwargs={"repeat_helo": True}
        )
        assert client.sent == 3
        assert server.commands_seen.count("HELO") == 3

    def test_banner_check_abort(self):
        # Waledac ceased activity without the expected Google banner.
        server, client = run_smtp_dialogue(
            server_kwargs={"banner": "sink.gq.example ESMTP"},
            client_kwargs={"on_banner": lambda b: "google.com" in b},
        )
        assert client.aborted
        assert client.sent == 0

    def test_banner_check_pass(self):
        server, client = run_smtp_dialogue(
            server_kwargs={"banner": "mx.google.com ESMTP abc123"},
            client_kwargs={"on_banner": lambda b: "google.com" in b},
        )
        assert not client.aborted
        assert client.sent == 1

    def test_parse_address_strict_vs_lenient(self):
        assert parse_address("<a@b.c>", Strictness.STRICT) == "a@b.c"
        assert parse_address("a@b.c", Strictness.STRICT) is None
        assert parse_address("a@b.c", Strictness.LENIENT) == "a@b.c"
        assert parse_address("  <a@b.c>", Strictness.LENIENT) == "a@b.c"

    def test_data_before_rcpt_rejected(self):
        sent = []
        server = SmtpServerEngine(send=sent.append)
        server.feed(b"HELO x\r\nDATA\r\n")
        assert any(b"503" in reply for reply in sent)

    def test_dot_stuffing_unstuffed(self):
        sent = []
        server = SmtpServerEngine(send=sent.append)
        server.feed(b"HELO x\r\nMAIL FROM:<a@b.c>\r\nRCPT TO:<d@e.f>\r\nDATA\r\n")
        server.feed(b"line one\r\n..leading dot\r\n.\r\n")
        assert server.transactions[0].body == b"line one\r\n.leading dot"


class TestFtp:
    def test_iframe_injection_job_round_trip(self):
        """The Storm §7.1 job: fetch page, inject iframe, re-upload."""
        to_client, to_server = [], []
        page = b"<html><body>hello</body></html>"
        server = FtpServerEngine(
            send=to_client.append,
            accounts={"webmaster": "hunter2"},
            files={"index.html": page},
        )

        def inject(content: bytes) -> bytes:
            return content.replace(
                b"</body>", b'<iframe src="http://evil.example/"></iframe></body>'
            )

        client = FtpClientEngine(
            send=to_server.append,
            username="webmaster", password="hunter2",
            filename="index.html", transform=inject,
        )
        for _ in range(100):
            if not to_client and not to_server:
                break
            while to_client:
                client.feed(to_client.pop(0))
            while to_server:
                server.feed(to_server.pop(0))
        assert client.uploaded
        assert b"iframe" in server.files["index.html"]
        assert server.uploads and server.uploads[0][0] == "index.html"

    def test_bad_credentials_fail(self):
        to_client, to_server = [], []
        server = FtpServerEngine(send=to_client.append, accounts={"u": "right"})
        client = FtpClientEngine(
            send=to_server.append, username="u", password="wrong",
            filename="x", transform=lambda b: b,
        )
        for _ in range(50):
            if not to_client and not to_server:
                break
            while to_client:
                client.feed(to_client.pop(0))
            while to_server:
                server.feed(to_server.pop(0))
        assert client.failed
        assert server.login_failures == 1


class TestSocks:
    def test_request_round_trip(self):
        request = Socks4Request(IPv4Address("198.51.100.9"), 21, user_id=b"storm")
        parsed, consumed = Socks4Request.parse(request.to_bytes())
        assert consumed == len(request.to_bytes())
        assert str(parsed.address) == "198.51.100.9"
        assert parsed.port == 21
        assert parsed.user_id == b"storm"

    def test_partial_request_needs_more(self):
        request = Socks4Request(IPv4Address("1.2.3.4"), 80).to_bytes()
        assert Socks4Request.parse(request[:5]) is None

    def test_reply_round_trip(self):
        reply = Socks4Reply(REPLY_GRANTED)
        parsed, _ = Socks4Reply.parse(reply.to_bytes())
        assert parsed.granted

    def test_non_socks_raises(self):
        with pytest.raises(ValueError):
            Socks4Request.parse(b"\x05\x01\x00\x00\x00\x00\x00\x00\x00")


class TestSmtpAnomalies:
    """Hostile-dialect accounting (docs/HARDENING.md): bare-LF line
    endings and oversized lines are tolerated where fidelity demands
    it, but always counted as protocol anomalies."""

    def make_server(self, **kwargs):
        replies = []
        server = SmtpServerEngine(send=replies.append, **kwargs)
        return server, replies

    def test_bare_lf_counted_and_tolerated_when_lenient(self):
        server, replies = self.make_server()
        server.feed(b"HELO spambot\nMAIL FROM: a@spam.example\n")
        assert server.anomalies["bare_lf"] == 2
        # Lenient fidelity: the dialect still works.
        assert any(b"250" in reply for reply in replies)

    def test_bare_lf_counted_but_not_framed_when_strict(self):
        server, replies = self.make_server(strictness=Strictness.STRICT)
        server.feed(b"HELO spambot\n")
        assert server.anomalies["bare_lf"] == 1
        # Strict framing waits for CRLF — nothing answered yet beyond
        # the banner.
        assert all(b"250" not in reply for reply in replies)

    def test_crlf_split_across_feeds_is_not_bare_lf(self):
        server, _ = self.make_server()
        server.feed(b"HELO spambot\r")
        server.feed(b"\nMAIL FROM: a@spam.example\r\n")
        assert server.anomalies["bare_lf"] == 0

    def test_oversized_line_truncated_when_lenient(self):
        server, _ = self.make_server(max_line_length=64)
        server.feed(b"HELO " + b"x" * 500 + b"\r\n")
        assert server.anomalies["oversized_line"] == 1

    def test_oversized_line_rejected_when_strict(self):
        server, replies = self.make_server(strictness=Strictness.STRICT,
                                           max_line_length=64)
        before = server.syntax_errors
        server.feed(b"HELO " + b"y" * 500 + b"\r\n")
        assert server.anomalies["oversized_line"] == 1
        assert server.syntax_errors == before + 1
        assert any(b"500" in reply for reply in replies)

    def test_unterminated_flood_is_bounded(self):
        server, _ = self.make_server(max_line_length=64)
        server.feed(b"z" * 10_000)  # no terminator at all
        assert server.anomalies["oversized_line"] >= 1
        assert len(server._buffer) <= 64

    def test_on_anomaly_callback_fires(self):
        events = []
        server = SmtpServerEngine(
            send=lambda _reply: None,
            on_anomaly=lambda kind, count: events.append((kind, count)))
        server.feed(b"HELO spambot\n")
        assert ("bare_lf", 1) in events

    def test_clean_dialogue_counts_nothing(self):
        server, client = run_smtp_dialogue()
        assert server.anomalies == {"bare_lf": 0, "oversized_line": 0}
