"""repro.parallel.topology: declarative farm-of-farms layouts lowered
by compiler passes into a concrete, digest-stable placement."""

from __future__ import annotations

import json

import pytest

from repro.parallel.topology import (
    DEFAULT_SERVICES,
    FarmTopology,
    HostSpec,
    Placement,
    TopologyError,
)

FARM_TASK = "repro.parallel.tasks:streaming_farm_shard"


def two_host_topology(**overrides) -> FarmTopology:
    kwargs = dict(
        name="itest",
        subfarms=4,
        hosts=[HostSpec("alpha", "local", cpus=8),
               HostSpec("beta", "10.0.0.2:9000", cpus=16,
                        max_workers=4)],
        subfarms_per_shard=2,
    )
    kwargs.update(overrides)
    return FarmTopology(**kwargs)


class TestCompile:
    def test_all_passes_run_in_order(self):
        placement = two_host_topology().compile()
        assert placement.passes_used == [
            "normalize", "validate_hosts", "assign_vlans",
            "allocate_cs", "place_services", "pack_shards",
            "validate_placement",
        ]

    def test_vlans_disjoint_and_sequential(self):
        placement = FarmTopology("t", subfarms=3, vlan_base=200,
                                 vlans_per_subfarm=2).compile()
        vlans = [sf["vlans"] for sf in placement.subfarms]
        assert vlans == [[200, 201], [202, 203], [204, 205]]

    def test_cs_pool_and_service_placement(self):
        placement = FarmTopology("t", subfarms=1,
                                 cs_per_subfarm=2).compile()
        (sf,) = placement.subfarms
        assert sf["cs"] == ["cs-sf-0-0", "cs-sf-0-1"]
        # Services round-robin over the pool.
        assert set(sf["services"]) == set(DEFAULT_SERVICES)
        assert set(sf["services"].values()) <= set(sf["cs"])

    def test_shards_round_robin_over_hosts(self):
        placement = two_host_topology().compile()
        assert [sh["host"] for sh in placement.shards] == \
            ["alpha", "beta"]
        assert [sh["subfarms"] for sh in placement.shards] == \
            [["sf-0", "sf-1"], ["sf-2", "sf-3"]]

    def test_explicit_host_pin_wins(self):
        placement = two_host_topology(
            subfarm_specs=[{"host": "beta"}, {"host": "beta"}]).compile()
        assert placement.shards[0]["host"] == "beta"

    def test_endpoints_skip_local_hosts(self):
        placement = two_host_topology().compile()
        assert placement.endpoints() == ["10.0.0.2:9000"]


class TestCompileErrors:
    def test_overlapping_vlans_fail_at_compile_time(self):
        topo = FarmTopology(
            "bad", subfarms=2,
            subfarm_specs=[{"vlans": [100, 101]},
                           {"vlans": [101, 102]}])
        with pytest.raises(TopologyError) as excinfo:
            topo.compile()
        (error,) = excinfo.value.errors
        assert error["pass"] == "assign_vlans"
        assert error["error"] == "vlan_overlap"
        assert "101" in error["detail"]

    def test_unknown_host_fails_at_compile_time(self):
        topo = FarmTopology("bad", subfarms=1,
                            subfarm_specs=[{"host": "ghost"}])
        with pytest.raises(TopologyError) as excinfo:
            topo.compile()
        assert any(e["error"] == "unknown_host"
                   for e in excinfo.value.errors)

    def test_vlan_exhaustion_is_structured(self):
        topo = FarmTopology("bad", subfarms=2, vlan_base=4094)
        with pytest.raises(TopologyError) as excinfo:
            topo.compile()
        assert any(e["error"] == "vlan_exhausted"
                   for e in excinfo.value.errors)

    def test_duplicate_subfarm_names_rejected(self):
        topo = FarmTopology("bad", subfarms=2,
                            subfarm_specs=[{"name": "x"},
                                           {"name": "x"}])
        with pytest.raises(TopologyError) as excinfo:
            topo.compile()
        assert any(e["error"] == "duplicate_subfarm"
                   for e in excinfo.value.errors)

    def test_split_shard_pins_rejected(self):
        topo = two_host_topology(
            subfarm_specs=[{"host": "alpha"}, {"host": "beta"}])
        with pytest.raises(TopologyError) as excinfo:
            topo.compile()
        assert any(e["error"] == "split_shard"
                   for e in excinfo.value.errors)

    def test_bad_host_address_rejected(self):
        topo = FarmTopology("bad", subfarms=1,
                            hosts=[HostSpec("h", "no-port-here")])
        with pytest.raises(TopologyError) as excinfo:
            topo.compile()
        assert any(e["error"] == "bad_address"
                   for e in excinfo.value.errors)


class TestSerialization:
    def test_topology_json_round_trip_stable_digest(self):
        topo = two_host_topology()
        clone = FarmTopology.from_dict(
            json.loads(json.dumps(topo.to_dict())))
        assert clone.to_dict() == topo.to_dict()
        assert clone.spec_digest() == topo.spec_digest()

    def test_placement_json_round_trip_stable_digest(self):
        placement = two_host_topology().compile()
        clone = Placement.from_dict(
            json.loads(json.dumps(placement.to_dict())))
        assert clone.to_dict() == placement.to_dict()
        assert clone.digest() == placement.digest()

    def test_unknown_topology_key_rejected(self):
        with pytest.raises(TopologyError) as excinfo:
            FarmTopology.from_dict({"name": "x", "subfarms": 1,
                                    "vlans": [1]})
        assert any(e["error"] == "unknown_key"
                   for e in excinfo.value.errors)

    def test_unknown_subfarm_key_rejected(self):
        with pytest.raises(TopologyError):
            FarmTopology.from_dict({
                "name": "x", "subfarms": 1,
                "subfarm_specs": [{"vlan": 100}],
            })

    def test_recompile_is_deterministic(self):
        topo = two_host_topology()
        assert topo.compile().digest() == topo.compile().digest()


class TestPlacementCampaign:
    def test_campaign_carries_placement_identity(self):
        placement = two_host_topology(
            inmates_per_subfarm=3).compile()
        campaign = placement.campaign(FARM_TASK, base_seed=7)
        assert len(campaign) == len(placement.shards)
        assert campaign.metadata["placement_digest"] == \
            placement.digest()
        assert campaign.metadata["shard_hosts"] == \
            {"0": "alpha", "1": "beta"}
        for spec in campaign:
            assert spec.params["subfarms"] == 2
            assert spec.params["inmates"] == 3
            assert isinstance(spec.params["seed"], int)

    def test_campaign_spec_digest_stable(self):
        placement = two_host_topology().compile()
        first = placement.campaign(FARM_TASK, base_seed=7)
        second = placement.campaign(FARM_TASK, base_seed=7)
        assert first.spec_digest() == second.spec_digest()
