"""Trace capture: selection, reassembly, pcap interoperability."""

from __future__ import annotations

import pytest

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.capture import PacketTrace, read_pcap, write_pcap
from repro.net.flow import FiveTuple
from repro.net.packet import (
    ACK,
    EthernetFrame,
    IPv4Packet,
    PROTO_TCP,
    SYN,
    TCPSegment,
    UDPDatagram,
)

MAC_A = MacAddress("02:00:00:00:00:0a")
MAC_B = MacAddress("02:00:00:00:00:0b")
IP_A = IPv4Address("10.0.0.1")
IP_B = IPv4Address("10.0.0.2")


def frame(transport, vlan=None, src=IP_A, dst=IP_B):
    return EthernetFrame(MAC_A, MAC_B, IPv4Packet(src, dst, transport),
                         vlan=vlan)


class TestSelection:
    def build(self):
        trace = PacketTrace()
        trace.capture(1.0, frame(TCPSegment(1000, 80, flags=SYN), vlan=5),
                      point="inmate")
        trace.capture(2.0, frame(UDPDatagram(53, 53, b"q"), vlan=5),
                      point="inmate")
        trace.capture(3.0, frame(TCPSegment(1001, 25, flags=SYN), vlan=6),
                      point="inmate")
        trace.capture(4.0, frame(TCPSegment(1000, 80, flags=SYN)),
                      point="upstream-out")
        return trace

    def test_by_point(self):
        trace = self.build()
        assert len(trace.select(point="inmate")) == 3
        assert len(trace.select(point="upstream-out")) == 1

    def test_by_vlan(self):
        trace = self.build()
        assert len(trace.select(vlan=5)) == 2
        assert len(trace.select(vlan=6)) == 1

    def test_by_proto_and_port(self):
        trace = self.build()
        assert len(trace.select(proto=PROTO_TCP)) == 3
        assert len(trace.select(dport=25)) == 1

    def test_capture_is_deep_copy(self):
        trace = PacketTrace()
        original = frame(TCPSegment(1, 2, seq=5, flags=SYN))
        trace.capture(0.0, original, point="x")
        original.ip.tcp.seq = 999  # mutate after capture
        assert trace.records[0].ip.tcp.seq == 5

    def test_flows_first_seen_orientation(self):
        trace = PacketTrace()
        trace.capture(1.0, frame(TCPSegment(1000, 80, flags=SYN)))
        trace.capture(2.0, frame(TCPSegment(80, 1000, flags=SYN | ACK),
                                 src=IP_B, dst=IP_A))
        flows = trace.flows()
        assert len(flows) == 1
        assert flows[0].orig_port == 1000


class TestPayloadReassembly:
    def test_in_order_payload(self):
        trace = PacketTrace()
        key = FiveTuple(IP_A, 1000, IP_B, 80, PROTO_TCP)
        trace.capture(1.0, frame(TCPSegment(1000, 80, seq=100, flags=ACK,
                                            payload=b"hello ")))
        trace.capture(2.0, frame(TCPSegment(1000, 80, seq=106, flags=ACK,
                                            payload=b"world")))
        assert trace.tcp_payload(key, "orig") == b"hello world"

    def test_duplicates_ignored(self):
        trace = PacketTrace()
        key = FiveTuple(IP_A, 1000, IP_B, 80, PROTO_TCP)
        segment = TCPSegment(1000, 80, seq=100, flags=ACK, payload=b"dup")
        trace.capture(1.0, frame(segment))
        trace.capture(2.0, frame(segment.copy()))
        assert trace.tcp_payload(key, "orig") == b"dup"

    def test_directions_separate(self):
        trace = PacketTrace()
        key = FiveTuple(IP_A, 1000, IP_B, 80, PROTO_TCP)
        trace.capture(1.0, frame(TCPSegment(1000, 80, seq=1, flags=ACK,
                                            payload=b"request")))
        trace.capture(2.0, frame(TCPSegment(80, 1000, seq=1, flags=ACK,
                                            payload=b"response"),
                                 src=IP_B, dst=IP_A))
        assert trace.tcp_payload(key, "orig") == b"request"
        assert trace.tcp_payload(key, "resp") == b"response"


class TestPcap:
    def test_round_trip_through_file(self, tmp_path):
        trace = PacketTrace()
        trace.capture(1.25, frame(TCPSegment(1000, 80, seq=7, flags=SYN),
                                  vlan=12))
        trace.capture(2.5, frame(UDPDatagram(53, 53, b"query"), vlan=12))
        path = tmp_path / "capture.pcap"
        written = write_pcap(str(path), trace.records)
        assert written == 2

        records = read_pcap(str(path))
        assert len(records) == 2
        assert records[0].frame.vlan == 12
        assert records[0].ip.tcp.seq == 7
        assert records[1].ip.udp.payload == b"query"
        assert records[0].timestamp == pytest.approx(1.25, abs=1e-5)

    def test_magic_validated(self, tmp_path):
        path = tmp_path / "bogus.pcap"
        path.write_bytes(b"\x00" * 40)
        with pytest.raises(ValueError):
            read_pcap(str(path))

    def test_real_farm_trace_exports(self, tmp_path):
        """The Figure 5 run exports to a genuine pcap file."""
        from repro.experiments.figure5 import run_figure5
        from repro.farm import Farm  # noqa: F401  (doc import)

        # Reuse the ladder scenario's farm via the experiment module.
        result = run_figure5(seed=9, duration=60.0)
        assert result.seq_bump_observed  # scenario sanity


class TestPcapSnaplen:
    def test_snapped_record_keeps_wire_length(self, tmp_path):
        """incl_len records stored bytes, orig_len the wire length —
        exactly libpcap's contract for frames longer than snaplen."""
        import struct

        trace = PacketTrace()
        trace.capture(1.0, frame(TCPSegment(1000, 80, flags=SYN,
                                            payload=b"X" * 400)))
        path = tmp_path / "snap.pcap"
        write_pcap(str(path), trace.records, snaplen=64)

        raw = path.read_bytes()
        snaplen_field = struct.unpack("!I", raw[16:20])[0]
        assert snaplen_field == 64
        seconds, micros, incl_len, orig_len = struct.unpack(
            "!IIII", raw[24:40])
        assert incl_len == 64
        assert orig_len > 64
        # The record body really is 64 bytes — file ends right after.
        assert len(raw) == 24 + 16 + 64

    def test_deeply_snapped_records_skipped_on_read(self, tmp_path):
        """A reader must not crash on snapped frames: ones cut beyond
        parseability are skipped, parseable ones still come back."""
        trace = PacketTrace()
        trace.capture(1.0, frame(TCPSegment(1000, 80, flags=SYN,
                                            payload=b"Y" * 400)))
        path = tmp_path / "deep.pcap"
        # snaplen=16 cuts into the IP header: nothing to parse.
        assert write_pcap(str(path), trace.records, snaplen=16) == 1
        assert read_pcap(str(path)) == []

    def test_snapped_payload_keeps_parseable_headers(self, tmp_path):
        """Snapping inside the TCP payload leaves the headers intact —
        the record reads back with a truncated payload, not an error."""
        trace = PacketTrace()
        trace.capture(1.0, frame(TCPSegment(1000, 80, flags=SYN,
                                            payload=b"Y" * 400)))
        trace.capture(2.0, frame(TCPSegment(1001, 25, flags=SYN)))
        path = tmp_path / "mixed.pcap"
        assert write_pcap(str(path), trace.records, snaplen=64) == 2

        records = read_pcap(str(path))
        assert len(records) == 2
        assert len(records[0].ip.tcp.payload) < 400
        assert records[1].ip.tcp.dport == 25

    def test_full_frames_unaffected_by_snaplen(self, tmp_path):
        trace = PacketTrace()
        trace.capture(1.0, frame(UDPDatagram(53, 53, b"q")))
        path = tmp_path / "fits.pcap"
        write_pcap(str(path), trace.records, snaplen=65535)
        records = read_pcap(str(path))
        assert len(records) == 1
        assert records[0].ip.udp.payload == b"q"

    def test_snaplen_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            write_pcap(str(tmp_path / "bad.pcap"), [], snaplen=0)


class TestPcapTimestamps:
    def test_sub_microsecond_rounds_carry_into_seconds(self, tmp_path):
        """t = 3.9999999 rounds to 4.000000, never to an out-of-range
        microseconds field of 1_000_000."""
        import struct

        trace = PacketTrace()
        trace.capture(3.9999999, frame(UDPDatagram(53, 53, b"q")))
        path = tmp_path / "carry.pcap"
        write_pcap(str(path), trace.records)

        raw = path.read_bytes()
        seconds, micros = struct.unpack("!II", raw[24:32])
        assert (seconds, micros) == (4, 0)

        records = read_pcap(str(path))
        assert records[0].timestamp == pytest.approx(4.0, abs=1e-9)

    def test_round_trip_preserves_microsecond_precision(self, tmp_path):
        trace = PacketTrace()
        times = [0.0, 1.25, 2.000001, 1234.999999]
        for t in times:
            trace.capture(t, frame(UDPDatagram(53, 53, b"q")))
        path = tmp_path / "precise.pcap"
        write_pcap(str(path), trace.records)

        records = read_pcap(str(path))
        assert len(records) == len(times)
        for record, t in zip(records, times):
            assert record.timestamp == pytest.approx(t, abs=1e-6)

    def test_truncated_record_body_is_an_error(self, tmp_path):
        trace = PacketTrace()
        trace.capture(1.0, frame(UDPDatagram(53, 53, b"q")))
        path = tmp_path / "cut.pcap"
        write_pcap(str(path), trace.records)
        raw = path.read_bytes()
        (tmp_path / "cut.pcap").write_bytes(raw[:-5])

        with pytest.raises(ValueError, match="truncated pcap record"):
            read_pcap(str(path))
