"""Telemetry smoke: a full farm run emits a valid, deterministic
JSON snapshot.

The acceptance bar for the observability layer: with telemetry on, a
complete containment scenario (inmate boots via DHCP, fetches over
HTTP, verdict enforced) must produce a snapshot carrying per-verdict
flow counters, shim-latency histogram quantiles, and at least one
complete per-flow trace — and the same seed must replay to
byte-identical JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.core.policy import AllowAll
from repro.farm import Farm, FarmConfig
from repro.net.addresses import IPv4Address
from repro.net.http import HttpParser, HttpRequest, HttpResponse
from repro.obs.export import SNAPSHOT_SCHEMA, to_json

pytestmark = [pytest.mark.obs, pytest.mark.integration]

EXTERNAL_WEB_IP = "203.0.113.80"


def _http_server(host, body=b"PAYLOAD"):
    def on_accept(conn):
        parser = HttpParser("request")

        def on_data(c, data):
            for _request in parser.feed(data):
                c.send(HttpResponse(200, body=body).to_bytes())

        conn.on_data = on_data
        conn.on_remote_close = lambda c: c.close()

    host.tcp.listen(80, on_accept)


def _fetch_image(results):
    def image(host):
        from repro.services.dhcp import DhcpClient

        def fetch(configured_host):
            def connect():
                conn = configured_host.tcp.connect(
                    IPv4Address(EXTERNAL_WEB_IP), 80)
                parser = HttpParser("response")
                conn.on_established = lambda c: c.send(
                    HttpRequest("GET", "/x", {"Host": "x"}).to_bytes())
                conn.on_data = lambda c, d: results.extend(parser.feed(d))

            configured_host.sim.schedule(1.0, connect)

        DhcpClient(host, on_configured=fetch).start()

    return image


def run_farm(seed=7):
    farm = Farm(FarmConfig(seed=seed, telemetry=True,
                           telemetry_snapshot_interval=30.0))
    sub = farm.create_subfarm("smoke")
    sub.add_catchall_sink()
    web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
    _http_server(web)
    results = []
    sub.create_inmate(image_factory=_fetch_image(results),
                      policy=AllowAll())
    farm.run(until=60)
    return farm, results


def test_farm_run_emits_valid_snapshot():
    farm, results = run_farm()
    assert results, "the contained HTTP fetch never completed"

    text = to_json(farm.telemetry)
    snap = json.loads(text)
    assert snap["schema"] == SNAPSHOT_SCHEMA
    assert snap["enabled"] is True
    assert snap["time"] == 60

    # Per-verdict flow counters made it through the whole stack.
    verdicts = {k: v for k, v in snap["counters"].items()
                if k.startswith("router.flows.verdict")}
    assert verdicts, f"no verdict counters in {sorted(snap['counters'])}"
    assert any("verdict=FORWARD" in key for key in verdicts)
    assert sum(verdicts.values()) >= 1

    # Shim-latency histogram quantiles are present and sane.
    rtt = snap["histograms"]["router.shim.rtt{subfarm=smoke}"]
    assert rtt["count"] >= 1
    assert 0 <= rtt["p50"] <= rtt["p95"] <= rtt["p99"]
    assert rtt["buckets"], "histogram lost its bucket counts"

    # At least one complete per-flow trace: bridge -> safety ->
    # shim_rtt -> verdict, every span closed.
    complete = [
        spans for spans in snap["traces"].values()
        if {"flow.bridge", "flow.safety", "flow.shim_rtt",
            "flow.verdict"} <= {s["name"] for s in spans}
        and all(s["end"] is not None for s in spans)
    ]
    assert complete, f"no complete trace among {list(snap['traces'])}"
    # Same-timestamp spans keep their creation order.
    names = [s["name"] for s in complete[0]]
    assert names.index("flow.bridge") < names.index("flow.verdict")

    # Simulator-level instrumentation ran.
    assert snap["counters"]["sim.events.fired"] > 0
    assert "sim.queue.depth" in snap["gauges"]

    # Periodic snapshots were captured on the virtual clock.
    assert len(farm.telemetry_snapshots) == 2
    assert farm.telemetry_snapshots[0]["time"] == 30.0


def test_snapshot_is_deterministic_across_replays():
    farm_a, _ = run_farm(seed=7)
    farm_b, _ = run_farm(seed=7)
    assert to_json(farm_a.telemetry) == to_json(farm_b.telemetry)


def test_disabled_farm_has_null_telemetry():
    farm = Farm(FarmConfig(seed=7))
    assert farm.telemetry.enabled is False
    snap = farm.telemetry_snapshot()
    assert snap["enabled"] is False
    assert snap["counters"] == {}
