"""repro.parallel: campaign descriptions, the serial fallback, the
deterministic merge, and serial-vs-parallel digest parity.

Failure modes (timeouts, crashes, oversubscription) live in
``test_parallel_failures.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.farm import FarmConfig
from repro.gateway.nat import InboundMode
from repro.obs.merge import label_identity, label_snapshot, merge_snapshots
from repro.parallel import (
    Campaign,
    ShardSpec,
    derive_seed,
    resolve_task,
    run_campaign,
    task_name,
)
from repro.parallel.tasks import noop_shard, streaming_farm_shard

FARM_TASK = "repro.parallel.tasks:streaming_farm_shard"
NOOP_TASK = "repro.parallel.tasks:noop_shard"

TINY_FARM = {"subfarms": 2, "inmates": 1, "rounds": 10, "duration": 30.0}


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, 3) == derive_seed(5, 3)

    def test_disjoint_across_shards(self):
        seeds = {derive_seed(0, shard) for shard in range(100)}
        assert len(seeds) == 100

    def test_disjoint_across_bases(self):
        # seed 1/shard 0 must share nothing with seed 0/shard 1 —
        # naive base+shard addition would collide.
        assert derive_seed(1, 0) != derive_seed(0, 1)


class TestShardSpec:
    def test_round_trip(self):
        spec = ShardSpec(3, NOOP_TASK, {"seed": 9}, timeout=12.5,
                        label="x")
        clone = ShardSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert clone.to_dict() == spec.to_dict()

    def test_rejects_non_json_params(self):
        with pytest.raises(ValueError):
            ShardSpec(0, NOOP_TASK, {"seed": object()})

    def test_resolve_task_round_trip(self):
        assert resolve_task(task_name(noop_shard)) is noop_shard
        assert resolve_task(FARM_TASK) is streaming_farm_shard

    def test_resolve_task_rejects_bad_names(self):
        with pytest.raises(ValueError):
            resolve_task("not-a-task")
        with pytest.raises(ValueError):
            resolve_task("repro.parallel.tasks:nope")


class TestCampaign:
    def test_seed_sweep_derives_disjoint_seeds(self):
        campaign = Campaign.seed_sweep("s", NOOP_TASK, count=4,
                                       base_seed=7)
        seeds = [spec.seed for spec in campaign]
        assert len(set(seeds)) == 4
        assert seeds == [derive_seed(7, shard) for shard in range(4)]

    def test_seed_sweep_explicit_seeds(self):
        campaign = Campaign.seed_sweep("s", NOOP_TASK,
                                       seeds=[3, 1, 4])
        assert [spec.seed for spec in campaign] == [3, 1, 4]

    def test_config_sweep_pins_and_derives(self):
        campaign = Campaign.config_sweep(
            "c", NOOP_TASK, [{"seed": 5}, {"value": 2}], base_seed=1)
        assert campaign.shards[0].seed == 5
        assert campaign.shards[1].seed == derive_seed(1, 1)

    def test_spec_digest_stable_and_sensitive(self):
        a = Campaign.seed_sweep("s", NOOP_TASK, count=3, base_seed=1)
        b = Campaign.seed_sweep("s", NOOP_TASK, count=3, base_seed=1)
        c = Campaign.seed_sweep("s", NOOP_TASK, count=3, base_seed=2)
        assert a.spec_digest() == b.spec_digest()
        assert a.spec_digest() != c.spec_digest()

    def test_round_trip(self):
        campaign = Campaign.seed_sweep("s", NOOP_TASK, count=3,
                                       base_seed=1)
        clone = Campaign.from_dict(
            json.loads(json.dumps(campaign.to_dict())))
        assert clone.spec_digest() == campaign.spec_digest()

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError):
            Campaign("dup", [ShardSpec(0, NOOP_TASK, {"seed": 1}),
                             ShardSpec(0, NOOP_TASK, {"seed": 2})])


class TestFarmConfigRoundTrip:
    def test_round_trip_through_json(self):
        config = FarmConfig(seed=9, inbound_mode=InboundMode.DROP,
                            telemetry=True,
                            telemetry_snapshot_interval=30.0,
                            global_networks=["192.0.2.0/24"],
                            safety_window=15.0)
        data = json.loads(json.dumps(config.to_dict()))
        clone = FarmConfig.from_dict(data)
        assert clone.to_dict() == config.to_dict()
        assert clone.inbound_mode is InboundMode.DROP
        assert [str(net) for net in clone.global_networks] \
            == ["192.0.2.0/24"]

    def test_defaults_round_trip(self):
        config = FarmConfig()
        assert FarmConfig.from_dict(config.to_dict()).to_dict() \
            == config.to_dict()

    def test_fault_and_resilience_options_round_trip(self):
        config = FarmConfig(
            seed=4,
            fault_plan={"specs": [
                {"kind": "cs_crash", "at": 30.0, "restore_after": 40.0},
                {"kind": "shim_drop", "probability": 0.2,
                 "start": 10.0, "end": 80.0, "subfarm": "alpha"},
            ]},
            verdict_deadline=5.0,
            verdict_retries=3,
            retry_backoff=1.5,
            pending_policy="forward",
            cs_probe_interval=2.5,
            cs_failure_threshold=4,
            lifecycle_retry_limit=1,
            lifecycle_retry_backoff=10.0,
        )
        clone = FarmConfig.from_dict(
            json.loads(json.dumps(config.to_dict())))
        assert clone.to_dict() == config.to_dict()
        assert clone.verdict_deadline == 5.0
        assert clone.pending_policy == "forward"
        assert not clone.fault_plan.is_empty
        assert clone.fault_plan.digest() == config.fault_plan.digest()

    def test_empty_fault_plan_round_trips_empty(self):
        clone = FarmConfig.from_dict(FarmConfig().to_dict())
        assert clone.fault_plan.is_empty
        assert clone.verdict_deadline is None

    def test_unknown_keys_fail_loudly(self):
        with pytest.raises(ValueError):
            FarmConfig.from_dict({"seed": 1, "not_a_knob": True})


class TestSerialFallback:
    def test_serial_runs_in_process(self):
        campaign = Campaign.seed_sweep("s", NOOP_TASK, count=5,
                                       base_seed=2)
        result = run_campaign(campaign, workers=1)
        assert result.ok
        assert result.workers == 1
        assert [r.index for r in result.shard_results] == list(range(5))
        assert all(r.worker == 0 for r in result.shard_results)

    def test_in_task_exception_is_structured(self):
        campaign = Campaign("f", [
            ShardSpec(0, "repro.parallel.tasks:failing_shard",
                      {"seed": 1, "message": "kaboom"}),
            ShardSpec(1, NOOP_TASK, {"seed": 2}),
        ])
        result = run_campaign(campaign, workers=1)
        assert not result.ok
        assert result.shard_results[1].ok
        failure = result.failures[0]
        assert failure["kind"] == "error"
        assert "kaboom" in failure["message"]

    def test_non_json_payload_is_structured(self):
        campaign = Campaign("p", [
            ShardSpec(0, "repro.parallel.campaign:resolve_task",
                      {"task": "repro.parallel.tasks:noop_shard"}),
        ])
        result = run_campaign(campaign, workers=1)
        assert result.failures[0]["kind"] == "payload"

    def test_merged_metrics_sum_across_shards(self):
        campaign = Campaign.config_sweep(
            "m", NOOP_TASK,
            [{"seed": 1, "value": 10}, {"seed": 2, "value": 32}])
        result = run_campaign(campaign, workers=1)
        assert result.merged["shards_ok"] == 2
        payloads = result.payloads()
        assert [p["value"] for p in payloads] == [10, 32]


class TestSnapshotMerge:
    def test_label_identity_sorted(self):
        assert label_identity("flows{sub=a}", shard="3") \
            == "flows{shard=3,sub=a}"
        assert label_identity("flows", shard="0") == "flows{shard=0}"

    def test_label_conflict_raises(self):
        with pytest.raises(ValueError):
            label_identity("flows{shard=1}", shard="2")

    def test_merge_disjoint_and_ordered(self):
        snap_a = {"schema": "s", "enabled": True, "time": 5.0,
                  "counters": {"c{x=1}": 2}, "gauges": {}, "histograms": {},
                  "traces": {}, "hub": {"published": 1},
                  "tracer": {"spans": 2}}
        snap_b = {"schema": "s", "enabled": True, "time": 9.0,
                  "counters": {"c{x=1}": 5}, "gauges": {}, "histograms": {},
                  "traces": {}, "hub": {"published": 3},
                  "tracer": {"spans": 1}}
        merged = merge_snapshots([snap_a, snap_b],
                                 labels=[{"shard": "0"}, {"shard": "1"}])
        assert merged["counters"] == {"c{shard=0,x=1}": 2,
                                      "c{shard=1,x=1}": 5}
        assert merged["time"] == 9.0
        assert merged["hub"]["published"] == 4
        assert merged["tracer"]["spans"] == 3
        # Order-independence: the other arrival order merges identically.
        flipped = merge_snapshots([snap_b, snap_a],
                                  labels=[{"shard": "1"}, {"shard": "0"}])
        assert json.dumps(merged, sort_keys=True) \
            == json.dumps(flipped, sort_keys=True)

    def test_collision_without_labels_raises(self):
        snap = {"schema": "s", "enabled": True, "time": 1.0,
                "counters": {"c": 1}, "gauges": {}, "histograms": {},
                "traces": {}, "hub": {}, "tracer": {}}
        with pytest.raises(ValueError):
            merge_snapshots([snap, dict(snap)])


@pytest.mark.integration
class TestDigestParity:
    """The acceptance contract: a parallel campaign merges to the
    byte-identical digest (and merged telemetry snapshot) of a serial
    run of the same spec — on a 2-subfarm seed sweep."""

    @pytest.fixture(scope="class")
    def campaign(self):
        return Campaign.seed_sweep("parity", FARM_TASK,
                                   params=dict(TINY_FARM),
                                   count=4, base_seed=13)

    @pytest.fixture(scope="class")
    def serial(self, campaign):
        return run_campaign(campaign, workers=1)

    @pytest.fixture(scope="class")
    def parallel(self, campaign):
        return run_campaign(campaign, workers=2)

    def test_both_complete(self, serial, parallel):
        assert serial.ok and parallel.ok
        assert len(serial.shard_results) == 4
        assert len(parallel.shard_results) == 4

    def test_campaign_digest_byte_identical(self, serial, parallel):
        assert serial.digest == parallel.digest
        assert serial.spec_digest == parallel.spec_digest

    def test_per_shard_payloads_identical(self, serial, parallel):
        for ours, theirs in zip(serial.shard_results,
                                parallel.shard_results):
            assert ours.payload["digest"] == theirs.payload["digest"]
            assert ours.payload["metrics"] == theirs.payload["metrics"]

    def test_merged_telemetry_snapshot_identical(self, serial, parallel):
        assert json.dumps(serial.merged["telemetry"], sort_keys=True) \
            == json.dumps(parallel.merged["telemetry"], sort_keys=True)

    def test_merged_snapshot_is_shard_labeled(self, serial):
        merged = serial.merged["telemetry"]
        assert merged["enabled"]
        shard_tags = {identity for identity in merged["counters"]
                      if "shard=" in identity}
        assert shard_tags, "expected shard labels on merged identities"

    def test_serial_replay_is_stable(self, campaign, serial):
        replay = run_campaign(campaign, workers=1)
        assert replay.digest == serial.digest
