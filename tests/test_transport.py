"""repro.parallel.transport: the frame codec, endpoint parsing, and
the SocketTransport round trip against a real localhost worker agent.

The codec tests are pure; the agent tests start
``python -m repro.parallel.worker`` subprocesses and are marked
``integration`` like the other real-process pool tests.
"""

from __future__ import annotations

import pytest

from repro.parallel import (
    Campaign,
    ShardSpec,
    SocketTransport,
    TransportError,
    local_agents,
    run_campaign,
)
from repro.parallel.transport import (
    FrameDecoder,
    encode_frame,
    parse_endpoint,
)

NOOP = "repro.parallel.tasks:noop_shard"
CRASH = "repro.parallel.tasks:crashing_shard"
FARM = "repro.parallel.tasks:streaming_farm_shard"

TINY_FARM = {"subfarms": 1, "inmates": 1, "rounds": 5, "duration": 30.0}


class TestFrameCodec:
    def test_round_trip_single_frame(self):
        decoder = FrameDecoder()
        message = ["done", 3, {"ok": True, "payload": {"x": 1}}]
        assert decoder.feed(encode_frame(message)) == [message]

    def test_reassembles_split_frames(self):
        decoder = FrameDecoder()
        blob = encode_frame(["start", 0]) + encode_frame(["idle", 1])
        out = []
        for offset in range(0, len(blob), 3):  # drip-feed 3 bytes
            out.extend(decoder.feed(blob[offset:offset + 3]))
        assert out == [["start", 0], ["idle", 1]]

    def test_oversize_announcement_rejected(self):
        import struct

        decoder = FrameDecoder()
        with pytest.raises(TransportError):
            decoder.feed(struct.pack(">I", 1 << 31))

    def test_garbage_frame_rejected(self):
        import struct

        decoder = FrameDecoder()
        with pytest.raises(TransportError):
            decoder.feed(struct.pack(">I", 3) + b"\xff\xfe\xfd")


class TestParseEndpoint:
    def test_host_port(self):
        assert parse_endpoint("10.0.0.2:9000") == ("10.0.0.2", 9000)

    @pytest.mark.parametrize("bad", ["nohost", ":9000", "h:", "h:nan",
                                     "h:70000"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_endpoint(bad)

    def test_transport_accepts_comma_string(self):
        transport = SocketTransport("a:1, b:2")
        assert [e for e, _ in transport.endpoints] == ["a:1", "b:2"]

    def test_transport_needs_an_endpoint(self):
        with pytest.raises(ValueError):
            SocketTransport([])


@pytest.mark.integration
class TestSocketDispatch:
    def test_unreachable_agent_is_a_transport_error(self):
        transport = SocketTransport("127.0.0.1:9", connect_timeout=0.5)
        with pytest.raises(TransportError, match="no worker agent"):
            transport.launch()

    def test_localhost_round_trip_matches_serial_digest(self):
        campaign = Campaign.seed_sweep("sock-parity", FARM,
                                       params=dict(TINY_FARM),
                                       count=4, base_seed=3)
        serial = run_campaign(campaign, workers=1)
        with local_agents(1) as endpoints:
            sock = run_campaign(campaign, workers=2, hosts=endpoints)
        assert sock.ok
        assert sock.digest == serial.digest
        assert sock.merged["scheduler"]["transport"] == "socket"
        # Scheduling honesty: the agent's host record is persisted.
        (host_record,) = sock.merged["hosts"].values()
        assert host_record["workers"] == 2
        assert host_record["shards"] == 4

    def test_worker_crash_over_socket_fails_only_its_shard(self):
        campaign = Campaign("sock-crash", [
            ShardSpec(0, NOOP, {"seed": 1}),
            ShardSpec(1, CRASH, {"seed": 2}),
            ShardSpec(2, NOOP, {"seed": 3}),
            ShardSpec(3, NOOP, {"seed": 4}),
        ])
        with local_agents(1) as endpoints:
            result = run_campaign(campaign, workers=2, hosts=endpoints)
        assert len(result.shard_results) == 4
        assert not result.ok
        (failure,) = result.failures
        assert failure["shard"] == 1
        assert failure["kind"] == "crash"
        assert "died" in failure["message"]
        survivors = [r for r in result.shard_results if r.index != 1]
        assert all(r.ok for r in survivors)
        # The crash cost a respawn (a reconnect), not the campaign.
        assert result.merged["scheduler"]["respawns"] >= 1

    def test_socket_timeout_round_trip_clock(self):
        campaign = Campaign("sock-timeout", [
            ShardSpec(0, "repro.parallel.tasks:sleepy_shard",
                      {"seed": 1, "wall_seconds": 60.0}, timeout=1.0),
            ShardSpec(1, NOOP, {"seed": 2}),
        ])
        with local_agents(1) as endpoints:
            result = run_campaign(campaign, workers=2, hosts=endpoints)
        failure = result.failures[0]
        assert failure["shard"] == 0
        assert failure["kind"] == "timeout"
        assert result.shard_results[1].ok
        # The recorded duration is the master-side round trip, so it
        # must cover at least the timeout itself.
        assert result.shard_results[0].seconds >= 1.0
