"""Match-action flow tables and the batched SoA datapath.

Covers the table's timeout semantics (idle and hard eviction on the
virtual clock, re-miss re-install, byte parity of a flow expiring
mid-conversation), the transactional install guarantee (a failed
compile never leaves orphan entries), the struct-of-arrays wire
serialization against per-packet ``to_bytes``, batched ingest parity
with scalar execution at every layer (``ingest_batch``,
``inmate_frame_batch``, the coalescing port, the whole farm), and the
config/report/telemetry surfaces riding along.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..",
                                "benchmarks"))
from bench_hotpath import (  # noqa: E402
    RouterHarness,
    TARGET_IP,
    TARGET_PORT,
    batch_parity,
    run_farm_flow_digest,
)

from repro.farm import FarmConfig  # noqa: E402
from repro.gateway.flowtable import EMIT_UPSTREAM, EMIT_VLAN  # noqa: E402
from repro.net.addresses import IPv4Address, MacAddress  # noqa: E402
from repro.net.packet import (  # noqa: E402
    ACK,
    EthernetFrame,
    FIN,
    IPv4Packet,
    PSH,
    SYN,
    TCPSegment,
    UDPDatagram,
)
from repro.net.link import Link, Port  # noqa: E402
from repro.net.wirebatch import (  # noqa: E402
    BatchOutput,
    ORIGIN_UPSTREAM,
    WireBatch,
    serialize_tcp_rows,
    serialize_udp_rows,
)
from repro.sim.engine import Simulator  # noqa: E402

VLAN = 2
SPORT = 40000
CLIENT_ISN = 1000
DST_ISN = 9000


def wire_state(harness: RouterHarness) -> dict:
    return {
        "to_vlan": [p.to_bytes() for p in harness.to_vlan],
        "to_service": [p.to_bytes() for p in harness.to_service],
        "upstream": [p.to_bytes() for p in harness.upstream],
        "counters": dict(harness.router.counters),
        "flows": [
            (str(r.orig), r.phase.value, r.verdict_name,
             r.c2s_packets, r.s2c_packets, r.c2s_bytes, r.s2c_bytes,
             r.last_activity)
            for r in harness.router.flows()
        ],
    }


def pump_once(harness: RouterHarness, record, seq: int) -> None:
    """One data packet in each direction over an established flow."""
    inmate_ip = record.orig.orig_ip
    harness.inmate_tcp(VLAN, inmate_ip, SPORT, TARGET_PORT,
                       seq, 5001, ACK | PSH, b"d" * 64)
    reply = TCPSegment(record.dst_port, SPORT, DST_ISN + 1, seq + 64,
                       ACK | PSH, payload=b"r" * 64)
    harness.router.upstream_packet(IPv4Packet(
        record.dst_ip, record.nat_global or inmate_ip, reply))


# ----------------------------------------------------------------------
# Timeouts
# ----------------------------------------------------------------------
def test_idle_timeout_evicts_and_reinstalls():
    harness = RouterHarness(seed=7, fastpath=True)
    harness.router.flowtable_idle_timeout = 30.0
    record = harness.establish_flow(VLAN, SPORT, client_isn=CLIENT_ISN,
                                    dst_isn=DST_ISN)
    assert record.fast_keys
    table = harness.router.flowtable
    entry = table.entries[record.fast_keys[0]]
    assert entry.idle_timeout == 30.0
    pump_once(harness, record, CLIENT_ISN + 1)
    assert table.hits > 0

    # Quiet past the idle timeout: the next packet's probe must evict
    # the whole flow's rules, miss, and re-install via the slow path.
    harness.sim.run(until=100.0)
    misses_before = table.misses
    pump_once(harness, record, CLIENT_ISN + 65)
    stats = table.stats()
    assert stats["timeout_evictions"]["idle"] == 1
    assert table.misses > misses_before
    assert record.fast_keys, "live flow must re-install after expiry"
    fresh = table.entries[record.fast_keys[0]]
    assert fresh.installed_at == 100.0


def test_hard_timeout_evicts_active_flow():
    harness = RouterHarness(seed=7, fastpath=True)
    harness.router.flowtable_hard_timeout = 50.0
    record = harness.establish_flow(VLAN, SPORT, client_isn=CLIENT_ISN,
                                    dst_isn=DST_ISN)
    table = harness.router.flowtable
    assert table.entries[record.fast_keys[0]].expires_at == 50.0

    # Activity does not extend a hard timeout.
    harness.sim.run(until=40.0)
    pump_once(harness, record, CLIENT_ISN + 1)
    assert table.stats()["timeout_evictions"]["hard"] == 0
    harness.sim.run(until=60.0)
    pump_once(harness, record, CLIENT_ISN + 65)
    assert table.stats()["timeout_evictions"]["hard"] == 1
    fresh = table.entries[record.fast_keys[0]]
    assert fresh.expires_at == 60.0 + 50.0


def test_sweep_reclaims_quiet_flows():
    harness = RouterHarness(seed=7, fastpath=True)
    harness.router.flowtable_idle_timeout = 30.0
    record = harness.establish_flow(VLAN, SPORT, client_isn=CLIENT_ISN,
                                    dst_isn=DST_ISN)
    assert len(record.fast_keys) == 2
    harness.sim.run(until=100.0)
    assert harness.router.sweep_flowtable() == 1
    table = harness.router.flowtable
    assert not table.entries
    assert table.stats()["timeout_evictions"]["idle"] == 1
    assert not record.fast_keys


def test_mid_conversation_expiry_byte_parity():
    """A flow whose rules expire mid-conversation (idle gap, then more
    data) must emit byte-identically to a fastpath-off router."""
    outcomes = []
    for fastpath in (True, False):
        harness = RouterHarness(seed=7, fastpath=fastpath)
        harness.router.flowtable_idle_timeout = 30.0
        record = harness.establish_flow(VLAN, SPORT,
                                        client_isn=CLIENT_ISN,
                                        dst_isn=DST_ISN)
        pump_once(harness, record, CLIENT_ISN + 1)
        harness.sim.run(until=200.0)
        pump_once(harness, record, CLIENT_ISN + 65)
        pump_once(harness, record, CLIENT_ISN + 129)
        harness.sim.run(until=300.0)
        outcomes.append(wire_state(harness))
    fast, slow = outcomes
    assert fast == slow


# ----------------------------------------------------------------------
# Transactional install
# ----------------------------------------------------------------------
def test_failed_compile_leaves_table_intact():
    harness = RouterHarness(seed=7, fastpath=True)
    record = harness.establish_flow(VLAN, SPORT, client_isn=CLIENT_ISN,
                                    dst_isn=DST_ISN)
    table = harness.router.flowtable
    keys_before = list(record.fast_keys)
    entries_before = {key: table.entries[key] for key in keys_before}

    dst_isn = record.dst_isn
    record.dst_isn = None  # isn_delta now raises mid-compile
    with pytest.raises(RuntimeError):
        harness.router._fastpath_install(record)
    # The failed install must not have uninstalled, replaced, or
    # half-written anything.
    assert list(record.fast_keys) == keys_before
    for key, entry in entries_before.items():
        assert table.entries[key] is entry

    record.dst_isn = dst_isn
    harness.router._fastpath_install(record)
    assert len(record.fast_keys) == len(keys_before)


def test_failed_compile_installs_nothing_from_empty():
    harness = RouterHarness(seed=7, fastpath=True)
    record = harness.establish_flow(VLAN, SPORT, client_isn=CLIENT_ISN,
                                    dst_isn=DST_ISN)
    harness.router._fastpath_uninstall(record)
    assert not harness.router.flowtable.entries
    record.dst_isn = None
    with pytest.raises(RuntimeError):
        harness.router._fastpath_install(record)
    assert not harness.router.flowtable.entries
    assert not record.fast_keys


# ----------------------------------------------------------------------
# Struct-of-arrays wire serialization
# ----------------------------------------------------------------------
def test_tcp_row_serialization_matches_to_bytes():
    src = IPv4Address("198.18.0.7")
    dst = IPv4Address(TARGET_IP)
    pay_a = b"a" * 100
    pay_b = b"b" * 31
    rows = [
        (0, 0, ACK, 65535, pay_a),
        (1, 2, ACK, 65535, pay_a),            # same group: amortized
        (0xFFFFFFFF, 0xFFFFFFFF, ACK, 65535, pay_a),  # carry-heavy fold
        (50, 60, ACK | PSH, 65535, pay_a),    # flags break the group
        (70, 80, ACK | PSH, 1024, pay_a),     # window breaks the group
        (90, 100, ACK | PSH, 1024, pay_b),    # payload breaks the group
        (110, 120, ACK | PSH, 1024, b"b" * 31),  # equal bytes, new object
        (130, 140, FIN | ACK, 1024, b""),
    ]
    seqs = [r[0] for r in rows]
    acks = [r[1] for r in rows]
    flags = [r[2] for r in rows]
    windows = [r[3] for r in rows]
    payloads = [r[4] for r in rows]
    wires = serialize_tcp_rows(src, dst, 40000, 80, seqs, acks, flags,
                               windows, payloads)
    expected = [
        IPv4Packet(src, dst, TCPSegment(40000, 80, seq, ack, flag,
                                        window, payload)).to_bytes()
        for seq, ack, flag, window, payload in rows
    ]
    assert wires == expected


def test_udp_row_serialization_matches_to_bytes():
    src = IPv4Address("198.18.0.7")
    dst = IPv4Address(TARGET_IP)
    shared = b"q" * 64
    payloads = [shared, shared, b"q" * 64, b"z" * 9, b""]
    wires = serialize_udp_rows(src, dst, 5353, 53, payloads)
    expected = [
        IPv4Packet(src, dst, UDPDatagram(5353, 53, payload)).to_bytes()
        for payload in payloads
    ]
    assert wires == expected
    # Equal consecutive payloads reuse the identical wire object.
    assert wires[0] is wires[1] is wires[2]


def test_wirebatch_materialize_roundtrip():
    batch = WireBatch()
    src = IPv4Address("198.18.0.7")
    dst = IPv4Address(TARGET_IP)
    batch.append_packet(IPv4Packet(src, dst, TCPSegment(
        40000, 80, 7, 9, ACK | PSH, 2048, b"pp")), vlan=4)
    batch.append_packet(IPv4Packet(dst, src, UDPDatagram(53, 5353,
                                                         b"dns")),
                        origin=ORIGIN_UPSTREAM)
    assert len(batch) == 2
    tcp = batch.materialize(0)
    assert tcp.to_bytes() == IPv4Packet(src, dst, TCPSegment(
        40000, 80, 7, 9, ACK | PSH, 2048, b"pp")).to_bytes()
    assert batch.vlan[0] == 4
    udp = batch.materialize(1)
    assert udp.payload.payload == b"dns"
    assert batch.origin[1] == ORIGIN_UPSTREAM


# ----------------------------------------------------------------------
# Batched ingest parity
# ----------------------------------------------------------------------
def test_ingest_batch_matches_scalar_datapath():
    parity = batch_parity(seed=7, rows=48)
    assert parity["wires_match"]
    assert parity["counters_match"]
    assert parity["stats_match"]


def test_ingest_batch_miss_rows_take_slow_path():
    """Rows whose key misses the table (a brand-new flow mid-batch)
    fall back to the scalar slow path, in row order, with the new
    flow's shim emissions captured in the batch output."""
    harness = RouterHarness(seed=7, fastpath=True)
    record = harness.establish_flow(VLAN, SPORT, client_isn=CLIENT_ISN,
                                    dst_isn=DST_ISN)
    inmate_ip = record.orig.orig_ip
    target = IPv4Address(TARGET_IP)
    batch = WireBatch()
    batch.append_tcp(inmate_ip.value, SPORT, target.value, TARGET_PORT,
                     CLIENT_ISN + 1, 5001, ACK | PSH, 65535, b"d" * 64,
                     vlan=VLAN)
    # A second flow's SYN — no table entry, must create a flow.
    batch.append_tcp(inmate_ip.value, SPORT + 1, target.value,
                     TARGET_PORT, 777, 0, SYN, 65535, b"", vlan=VLAN)
    flows_before = len(harness.router.flows())
    out = BatchOutput()
    harness.router.ingest_batch(batch, out)
    assert len(harness.router.flows()) == flows_before + 1
    codes = [run[0] for run in out.runs]
    # Hit row emitted upstream first, then the SYN's shim handshake
    # emission toward the inmate (the CS SYN proxying).
    assert codes[0] == EMIT_UPSTREAM
    assert len(codes) >= 2


def test_inmate_frame_batch_matches_scalar():
    """The trunk batch entry point: interleaved flows plus a mid-batch
    new flow must emit byte-identically to per-frame ingestion."""
    def build_frames(harness, first, second):
        frames = []
        target = IPv4Address(TARGET_IP)
        for index, record in ((0, first), (1, second), (2, first),
                              (3, first), (4, second)):
            segment = TCPSegment(record.orig.orig_port, TARGET_PORT,
                                 CLIENT_ISN + 1 + 64 * index, 5001,
                                 ACK | PSH, payload=b"d" * 64)
            frames.append(EthernetFrame(
                harness.mac, MacAddress("02:00:00:00:00:01"),
                IPv4Packet(record.orig.orig_ip, target, segment),
                vlan=VLAN))
        # A brand-new flow's SYN lands mid-batch.
        syn = TCPSegment(SPORT + 9, TARGET_PORT, 50, 0, SYN)
        frames.insert(3, EthernetFrame(
            harness.mac, MacAddress("02:00:00:00:00:01"),
            IPv4Packet(first.orig.orig_ip, target, syn), vlan=VLAN))
        return frames

    outcomes = []
    for batched in (True, False):
        harness = RouterHarness(seed=7, fastpath=True)
        first = harness.establish_flow(VLAN, SPORT,
                                       client_isn=CLIENT_ISN,
                                       dst_isn=DST_ISN)
        second = harness.establish_flow(VLAN, SPORT + 1,
                                        client_isn=CLIENT_ISN,
                                        dst_isn=DST_ISN)
        harness.drain()
        frames = build_frames(harness, first, second)
        if batched:
            harness.router.inmate_frame_batch(
                [(frame, VLAN) for frame in frames])
        else:
            for frame in frames:
                harness.router.inmate_frame(frame, VLAN)
        outcomes.append(wire_state(harness))
    fast, slow = outcomes
    assert fast == slow


# ----------------------------------------------------------------------
# Engine and link coalescing
# ----------------------------------------------------------------------
def test_drain_coincident_claims_head_run_only():
    sim = Simulator(seed=1)
    seen = []

    def cb(value):
        if value == 1:
            drained = [args[0] for args in sim.drain_coincident(cb)]
            seen.append(("drained", drained))
        seen.append(value)

    def other():
        seen.append("other")

    sim.schedule_at(1.0, cb, 1)
    sim.schedule_at(1.0, cb, 2)
    sim.schedule_at(1.0, other)
    sim.schedule_at(1.0, cb, 3)
    sim.run(until=2.0)
    # cb(1) claims only cb(2): `other` ends the head run, so cb(3)
    # still fires in its original scalar position.
    assert seen == [("drained", [2]), 1, "other", 3]
    assert sim.events_processed == 4


def test_drain_coincident_stops_at_future_events():
    sim = Simulator(seed=1)
    seen = []

    def cb(value):
        if value == 1:
            seen.append([args[0] for args in sim.drain_coincident(cb)])
        seen.append(value)

    sim.schedule_at(1.0, cb, 1)
    sim.schedule_at(1.5, cb, 2)
    sim.run(until=2.0)
    assert seen == [[], 1, 2]


class _BatchingDevice:
    def __init__(self):
        self.batches = []
        self.frames = []

    def receive_frame_batch(self, frames, port):
        self.batches.append(len(frames))
        self.frames.extend(frames)

    def receive_frame(self, frame, port):
        self.batches.append(1)
        self.frames.append(frame)


class _ScalarDevice:
    def __init__(self):
        self.frames = []

    def receive_frame(self, frame, port):
        self.frames.append(frame)


def _frame(tag: int) -> EthernetFrame:
    return EthernetFrame(MacAddress(0x02 << 40 | tag),
                         MacAddress.broadcast(), b"payload", vlan=2)


def test_port_coalesce_merges_coincident_frames():
    sim = Simulator(seed=1)
    device = _BatchingDevice()
    sender, receiver = Port(object(), "tx"), Port(device, "rx")
    Link(sim, sender, receiver, latency=0.001)
    receiver.coalesce = sim
    frames = [_frame(1), _frame(2), _frame(3)]
    for frame in frames:
        sender.send(frame)
    sim.run(until=1.0)
    assert device.batches == [3]
    assert device.frames == frames
    assert receiver.frames_received == 3


def test_port_coalesce_without_batch_handler_replays_in_order():
    sim = Simulator(seed=1)
    device = _ScalarDevice()
    sender, receiver = Port(object(), "tx"), Port(device, "rx")
    Link(sim, sender, receiver, latency=0.001)
    receiver.coalesce = sim
    frames = [_frame(1), _frame(2)]
    for frame in frames:
        sender.send(frame)
    sim.run(until=1.0)
    assert device.frames == frames
    assert receiver.frames_received == 2


def test_link_batch_window_quantizes_delivery():
    sim = Simulator(seed=1)
    device = _BatchingDevice()
    sender, receiver = Port(object(), "tx"), Port(device, "rx")
    Link(sim, sender, receiver, latency=0.001, batch_window=0.01)
    receiver.coalesce = sim
    first, second = _frame(1), _frame(2)
    sender.send(first)                               # t=0 -> due 0.01
    sim.schedule_at(0.004, sender.send, second)      # 0.005 -> due 0.01
    sim.run(until=1.0)
    assert device.batches == [2]
    assert device.frames == [first, second]


# ----------------------------------------------------------------------
# Farm wiring and config round-trip
# ----------------------------------------------------------------------
def test_farmconfig_roundtrips_flowtable_knobs():
    config = FarmConfig(seed=3, flowtable_idle_timeout=30.0,
                        flowtable_hard_timeout=900.0,
                        batch_window=0.005)
    data = config.to_dict()
    back = FarmConfig.from_dict(data)
    assert back.flowtable_idle_timeout == 30.0
    assert back.flowtable_hard_timeout == 900.0
    assert back.batch_window == 0.005
    # Defaults round-trip as None (everything disabled).
    defaults = FarmConfig.from_dict(FarmConfig().to_dict())
    assert defaults.flowtable_idle_timeout is None
    assert defaults.flowtable_hard_timeout is None
    assert defaults.batch_window is None
    with pytest.raises(ValueError):
        FarmConfig(batch_window=-1.0)


def test_farm_wires_timeouts_to_routers():
    from repro.farm import Farm

    farm = Farm(FarmConfig(seed=3, flowtable_idle_timeout=30.0,
                           flowtable_hard_timeout=900.0))
    sub = farm.create_subfarm("wired")
    assert sub.router.flowtable_idle_timeout == 30.0
    assert sub.router.flowtable_hard_timeout == 900.0
    assert farm.gateway.trunk_port.coalesce is None

    batched = Farm(FarmConfig(seed=3, batch_window=0.005))
    assert batched.gateway.trunk_port.coalesce is batched.sim
    assert batched.gateway.trunk_port.link.batch_window == 0.005
    coincident = Farm(FarmConfig(seed=3, batch_window=0.0))
    assert coincident.gateway.trunk_port.coalesce is coincident.sim
    assert coincident.gateway.trunk_port.link.batch_window is None


def test_farm_batch_window_parity():
    """Whole-farm gate: a zero window is byte-identical to unbatched;
    a positive window preserves every counter and table stat."""
    base = run_farm_flow_digest(seed=23, inmates=2, rounds=12,
                                duration=60.0)
    zero = run_farm_flow_digest(seed=23, inmates=2, rounds=12,
                                duration=60.0, batch_window=0.0)
    windowed = run_farm_flow_digest(seed=23, inmates=2, rounds=12,
                                    duration=60.0, batch_window=0.005)
    assert zero["digest"] == base["digest"]
    assert windowed["counters"] == base["counters"]
    assert windowed["flowtable"] == base["flowtable"]


# ----------------------------------------------------------------------
# Telemetry and report surfaces
# ----------------------------------------------------------------------
def test_flowtable_stats_and_snapshot():
    harness = RouterHarness(seed=7, fastpath=True)
    record = harness.establish_flow(VLAN, SPORT, client_isn=CLIENT_ISN,
                                    dst_isn=DST_ISN)
    pump_once(harness, record, CLIENT_ISN + 1)
    table = harness.router.flowtable
    stats = table.stats()
    assert stats["occupancy"] == len(record.fast_keys) == 2
    assert stats["hits"] == 2
    assert stats["installs"] == 2
    snapshot = table.snapshot()
    assert len(snapshot) == 2
    actions = {entry["action"] for entry in snapshot}
    assert actions == {"tcp-c2d", "tcp-d2c"}
    for entry in snapshot:
        assert entry["verdict"] == "FORWARD"
        assert entry["vlan"] == VLAN
        assert entry["idle_timeout"] is None
        assert entry["hard_expires_at"] is None


def test_report_renders_flow_table_section():
    from repro.core.policy import AllowAll
    from repro.farm import Farm
    from repro.reporting.report import ActivityReport, render_report

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..",
                                    "benchmarks"))
    from bench_hotpath import _echo_server, streaming_image

    farm = Farm(FarmConfig(seed=5, telemetry=True))
    _echo_server(farm.add_external_host("echo", TARGET_IP))
    sub = farm.create_subfarm("tables")
    sub.set_default_policy(AllowAll())
    sub.router.fastpath_enabled = True
    sub.create_inmate(image_factory=streaming_image(6))
    farm.run(until=40.0)
    assert sub.router.flowtable.installs > 0

    report = ActivityReport.from_subfarms([sub])
    rendered = render_report(report)
    assert "Flow tables" in rendered
    assert "Subfarm 'tables'" in rendered
    assert "occupancy" in rendered
    assert "tcp-c2d" in rendered

    # Fastpath-off farms render without the section.
    off = Farm(FarmConfig(seed=5, telemetry=True))
    _echo_server(off.add_external_host("echo", TARGET_IP))
    sub_off = off.create_subfarm("tables")
    sub_off.set_default_policy(AllowAll())
    sub_off.router.fastpath_enabled = False
    sub_off.create_inmate(image_factory=streaming_image(6))
    off.run(until=40.0)
    assert "Flow tables" not in render_report(
        ActivityReport.from_subfarms([sub_off]))
