"""The isolation-model compiler: symbolic DSL evaluation, closed-form
built-ins, concolic probing, fault-plan overlays, and digest identity.
"""

from __future__ import annotations

import pytest

from repro.core.dsl import DslPolicy
from repro.core.policy import (
    AllowAll,
    ContainmentPolicy,
    DefaultDeny,
    ReflectAll,
)
from repro.core.verdicts import ContainmentDecision, Verdict
from repro.farm import Farm, FarmConfig
from repro.faults.plan import FaultPlan
from repro.net.packet import PROTO_TCP, PROTO_UDP
from repro.verify.model import (
    compile_dsl_policy,
    compile_farm,
    compile_policy,
)


def _cell_for(model, direction, proto, port, content="*"):
    """The decision-surface cell covering one concrete point."""
    for cell in model.cells(direction, proto):
        if cell.port_lo <= port <= cell.port_hi \
                and cell.content in (content, "*"):
            return cell
    raise AssertionError(f"no cell covers {direction}/{proto}/{port}")


class TestDslCompilation:
    def test_atoms_partition_and_first_match(self):
        policy = DslPolicy(
            "port 80-100/tcp -> drop\n"
            "port 80-443/tcp -> forward\n"
            "default -> reflect\n")
        model = compile_dsl_policy(policy)
        assert model.exact
        assert _cell_for(model, "outbound", PROTO_TCP, 80).verdict == "DROP"
        assert _cell_for(model, "outbound", PROTO_TCP, 100).verdict == "DROP"
        assert _cell_for(model, "outbound", PROTO_TCP,
                         101).verdict == "FORWARD"
        assert _cell_for(model, "outbound", PROTO_TCP,
                         443).verdict == "FORWARD"
        assert _cell_for(model, "outbound", PROTO_TCP,
                         444).verdict == "REFLECT"
        # The udp surface never saw the tcp rules.
        assert _cell_for(model, "outbound", PROTO_UDP,
                         80).verdict == "REFLECT"

    def test_surface_is_total(self):
        """Every (direction, proto, port) point is covered by exactly
        one endpoint-decidable cell."""
        policy = DslPolicy(
            "port 25/tcp -> drop\n"
            "port 6000-7000/udp -> limit 2000\n"
            "default -> forward\n")
        model = compile_dsl_policy(policy)
        for direction in ("outbound", "inbound"):
            for proto in (PROTO_TCP, PROTO_UDP):
                cells = [cell for cell in model.cells(direction, proto)
                         if cell.content in ("*", "other")]
                covered = sorted((cell.port_lo, cell.port_hi)
                                 for cell in cells)
                cursor = 0
                for lo, hi in covered:
                    assert lo == cursor
                    cursor = hi + 1
                assert cursor == 65536

    def test_content_rules_branch_within_atom(self):
        policy = DslPolicy(
            'port 80/tcp content ~ "GET " -> rewrite\n'
            "port 80/tcp -> drop\n"
            "default -> forward\n")
        model = compile_dsl_policy(policy)
        cells = [cell for cell in model.cells("outbound", PROTO_TCP)
                 if cell.port_lo <= 80 <= cell.port_hi]
        by_content = {cell.content: cell.verdict for cell in cells}
        assert by_content["prefix:'GET '"] == "REWRITE"
        assert by_content["other"] == "DROP"

    def test_redirect_target_classified(self):
        world = compile_dsl_policy(DslPolicy(
            "port 80/tcp -> redirect 203.0.113.99\ndefault -> drop\n"))
        cell = _cell_for(world, "outbound", PROTO_TCP, 80)
        assert cell.verdict == "REDIRECT"
        assert cell.target == "203.0.113.99"
        assert cell.target_class == "world"
        farm = compile_dsl_policy(DslPolicy(
            "port 80/tcp -> redirect 10.9.9.9\ndefault -> drop\n"))
        assert _cell_for(farm, "outbound", PROTO_TCP,
                         80).target_class == "farm"


class TestBuiltinsAndProbing:
    def test_closed_forms(self):
        allow = compile_policy(AllowAll())
        deny = compile_policy(DefaultDeny())
        assert allow.exact and deny.exact
        assert {cell.verdict for cell in allow.outcomes} == {"FORWARD"}
        assert {cell.verdict for cell in deny.outcomes} == {"DROP"}

    def test_reflect_all_targets_farm(self):
        model = compile_policy(ReflectAll())
        assert model.exact
        assert {cell.verdict for cell in model.outcomes} == {"REFLECT"}
        assert all(cell.target_class == "farm" for cell in model.outcomes)

    def test_opaque_policy_probed_inexact(self):
        class PortParity(ContainmentPolicy):
            policy_name = "PortParity"

            def decide(self, ctx):
                verdict = (Verdict.FORWARD if ctx.flow.resp_port % 2
                           else Verdict.DROP)
                return ContainmentDecision(verdict, policy=self.policy_name)

        model = compile_policy(PortParity())
        assert not model.exact
        assert all(not cell.exact for cell in model.outcomes)
        verdicts = {cell.verdict for cell in model.outcomes}
        assert verdicts == {"FORWARD", "DROP"}


class TestOverlays:
    def test_link_faults_always_window(self):
        plan = FaultPlan([{"kind": "shim_partition",
                           "start": 20.0, "end": 50.0}])
        windows = plan.verdict_outage_windows("sub", server_count=3)
        assert windows == [{"start": 20.0, "end": 50.0,
                            "kind": "shim_partition"}]

    def test_single_server_crash_with_standby_opens_no_window(self):
        plan = FaultPlan([{"kind": "cs_crash", "at": 30.0}])
        assert plan.verdict_outage_windows("sub", server_count=2) == []

    def test_crash_of_every_server_opens_window(self):
        plan = FaultPlan([
            {"kind": "cs_crash", "at": 30.0, "restore_after": 40.0},
            {"kind": "cs_crash", "at": 25.0, "server": 1},
        ])
        windows = plan.verdict_outage_windows("sub", server_count=2)
        assert windows == [{"start": 30.0, "end": 70.0,
                            "kind": "cs_crash"}]

    def test_other_subfarm_faults_ignored(self):
        plan = FaultPlan([{"kind": "shim_partition", "subfarm": "other",
                           "start": 0.0, "end": 10.0}])
        assert plan.verdict_outage_windows("sub") == []


class TestFarmCompilation:
    def _farm(self, seed=7, policy=None, **config):
        farm = Farm(FarmConfig(seed=seed, **config))
        sub = farm.create_subfarm("m")
        sub.set_default_policy(policy or AllowAll())
        farm.run(until=1.0)
        return farm

    def test_model_digest_stable_across_runs(self):
        a = compile_farm(self._farm())
        b = compile_farm(self._farm())
        assert a.digest() == b.digest()

    def test_model_digest_tracks_policy(self):
        a = compile_farm(self._farm())
        b = compile_farm(self._farm(policy=DefaultDeny()))
        assert a.digest() != b.digest()

    def test_overlays_only_with_resilience(self):
        plan = {"specs": [{"kind": "shim_partition",
                           "start": 5.0, "end": 9.0}]}
        plain = compile_farm(self._farm(fault_plan=plan))
        assert plain.subfarms[0].overlays == []
        resilient = compile_farm(self._farm(
            fault_plan=plan, verdict_deadline=5.0))
        assert resilient.subfarms[0].overlays
        assert resilient.subfarms[0].pending_policy is not None
