"""The policy DSL (§8 future work) and the verification tool-chain."""

from __future__ import annotations

import pytest

from repro.analysis.policy_testing import (
    DEFAULT_CONTENT,
    check_invariants,
    enumerate_surface,
    generate_probes,
    verify_enforcement,
)
from repro.core.dsl import DslError, DslPolicy, parse_program
from repro.core.policy import AllowAll, DefaultDeny
from repro.core.verdicts import Verdict
from repro.policies.spambot import GrumPolicy

GRUM_PROGRAM = """
# Grum containment, as a policy program
outbound port 25/tcp                          -> reflect smtp_sink
outbound port 80/tcp content ~ "GET /grum/"   -> forward
default                                       -> reflect sink
"""


class TestDslParsing:
    def test_grum_program_parses(self):
        rules, default = parse_program(GRUM_PROGRAM)
        assert len(rules) == 2
        assert rules[0].port_lo == 25 and rules[0].action.kind == "reflect"
        assert rules[1].needs_content
        assert default.kind == "reflect"

    def test_port_ranges(self):
        rules, _ = parse_program(
            "port 6660-6669/tcp -> drop\ndefault -> forward\n")
        assert rules[0].port_lo == 6660 and rules[0].port_hi == 6669

    def test_redirect_with_port(self):
        rules, _ = parse_program(
            "port 80/tcp -> redirect 10.3.0.9:8080\ndefault -> drop\n")
        action = rules[0].action
        assert str(action.target_ip) == "10.3.0.9"
        assert action.target_port == 8080

    def test_limit_rate(self):
        rules, _ = parse_program(
            "port 8080/tcp -> limit 2500\ndefault -> drop\n")
        assert rules[0].action.rate == 2500.0

    def test_regex_content(self):
        rules, _ = parse_program(
            'port 80/tcp content =~ "GET /(a|b)/" -> forward\n'
            "default -> drop\n")
        assert rules[0].matches_content(b"GET /a/x HTTP/1.1")
        assert not rules[0].matches_content(b"GET /c/x HTTP/1.1")

    def test_missing_default_rejected(self):
        with pytest.raises(DslError) as exc:
            parse_program("port 80/tcp -> forward\n")
        assert exc.value.reason == "missing-default"

    def test_empty_program_rejected(self):
        """An empty policy must raise, not silently deny (or allow)."""
        with pytest.raises(DslError) as exc:
            parse_program("")
        assert exc.value.reason == "missing-default"
        with pytest.raises(DslError):
            parse_program("# comments only\n\n")

    def test_duplicate_default_rejected(self):
        with pytest.raises(DslError) as exc:
            parse_program("default -> drop\ndefault -> forward\n")
        assert exc.value.reason == "duplicate-default"
        assert exc.value.line_number == 2

    def test_unknown_action_rejected(self):
        with pytest.raises(DslError) as exc:
            parse_program("port 80/tcp -> explode\ndefault -> drop\n")
        assert exc.value.reason == "unknown-action"

    def test_bad_port_spec_rejected(self):
        with pytest.raises(DslError) as exc:
            parse_program("port eighty/tcp -> drop\ndefault -> drop\n")
        assert exc.value.reason == "bad-port-spec"
        assert exc.value.line_number == 1

    def test_shadowed_rule_rejected(self):
        """A rule fully covered by an earlier rule can never fire —
        usually a mis-ordered policy whose author expected the narrow
        rule to win.  The parser rejects it outright."""
        with pytest.raises(DslError) as exc:
            parse_program(
                "port 1-65535/tcp -> drop\n"
                "port 80/tcp -> forward\n"
                "default -> drop\n")
        assert exc.value.reason == "shadowed-rule"
        assert exc.value.line_number == 2
        assert "port 80/tcp" in exc.value.line

    def test_shadowed_content_rule_rejected(self):
        # An endpoint-only rule shadows any later content rule on the
        # same port: decide() returns before content is ever consulted.
        with pytest.raises(DslError) as exc:
            parse_program(
                "port 80/tcp -> forward\n"
                'port 80/tcp content ~ "GET /cnc/" -> drop\n'
                "default -> drop\n")
        assert exc.value.reason == "shadowed-rule"

    def test_partial_overlap_allowed(self):
        # Overlap without full coverage is legitimate layering.
        rules, _ = parse_program(
            "port 80-100/tcp -> drop\n"
            "port 80-443/tcp -> forward\n"
            "default -> drop\n")
        assert len(rules) == 2

    def test_narrow_before_wide_allowed(self):
        # The idiomatic order — specific rule first — must still parse.
        rules, _ = parse_program(
            "port 80/tcp -> forward\n"
            "port 1-65535/tcp -> drop\n"
            "default -> drop\n")
        assert len(rules) == 2


class TestDslSemantics:
    def test_first_match_wins(self):
        policy = DslPolicy(
            "port 80-100/tcp -> drop\nport 80-443/tcp -> forward\n"
            "default -> forward\n")
        surface = enumerate_surface(policy)
        matrix = surface.verdict_matrix()
        assert matrix[("outbound", 80, "http-get")] == "DROP"
        assert matrix[("outbound", 443, "http-get")] == "FORWARD"

    def test_grum_program_matches_handwritten_policy(self):
        """The DSL program and the Python GrumPolicy must agree on the
        full probe surface (modulo annotation details)."""
        dsl_surface = enumerate_surface(DslPolicy(GRUM_PROGRAM))
        py_surface = enumerate_surface(GrumPolicy())
        dsl_matrix = dsl_surface.verdict_matrix()
        py_matrix = py_surface.verdict_matrix()
        for key, py_verdict in py_matrix.items():
            direction, port, tag = key
            if direction == "inbound":
                continue  # handwritten policy treats inbound via autoinfect path
            if tag == "empty":
                continue  # undecidable without content either way
            if py_verdict == "REWRITE":
                continue  # autoinfection specifics are out of DSL scope
            assert dsl_matrix.get(key) == py_verdict, key

    def test_direction_guards(self):
        policy = DslPolicy(
            "inbound any -> forward\ndefault -> drop\n")
        surface = enumerate_surface(policy)
        matrix = surface.verdict_matrix()
        assert matrix[("inbound", 80, "http-get")] == "FORWARD"
        assert matrix[("outbound", 80, "http-get")] == "DROP"

    def test_coverage_counts_hits(self):
        policy = DslPolicy(GRUM_PROGRAM)
        enumerate_surface(policy)
        coverage = dict(policy.coverage())
        assert any(count > 0 for count in coverage.values())


class TestSurfaceEnumeration:
    def test_default_deny_forwards_nothing(self):
        surface = enumerate_surface(DefaultDeny())
        assert surface.forwarded() == []

    def test_allow_all_forwards_everything(self):
        surface = enumerate_surface(AllowAll())
        assert len(surface.forwarded()) == len(surface.outcomes)

    def test_probe_matrix_dimensions(self):
        probes = generate_probes(ports=[25, 80], directions=("outbound",))
        assert len(probes) == 2 * len(DEFAULT_CONTENT)


class TestInvariants:
    def test_allow_all_violates_smtp_escape(self):
        surface = enumerate_surface(AllowAll())
        violations = check_invariants(surface)
        names = {name for name, _outcome, _msg in violations}
        assert "no-smtp-escape" in names
        assert "no-blanket-forward" in names

    def test_grum_policy_is_clean(self):
        surface = enumerate_surface(GrumPolicy())
        assert check_invariants(surface) == []

    def test_dsl_grum_program_is_clean(self):
        surface = enumerate_surface(DslPolicy(GRUM_PROGRAM))
        assert check_invariants(surface) == []


@pytest.mark.integration
class TestLiveEnforcement:
    def test_dsl_policy_enforced_without_mismatch(self):
        summary, mismatches = verify_enforcement(
            lambda: DslPolicy(GRUM_PROGRAM))
        assert mismatches == []
        assert summary["verdicts"].get("REFLECT", 0) > 0

    def test_forward_policy_reaches_witness(self):
        summary, mismatches = verify_enforcement(AllowAll)
        assert mismatches == []
        assert summary["witness_ports"], "forwards must reach the witness"
