"""End-to-end containment: every Figure 2 verdict through a full farm.

These tests assemble the complete system — backbone, gateway, subfarm
router, containment server, inmates booted via DHCP — and verify each
flow-manipulation mode by observable behaviour, including the Figure 5
sequence-space arithmetic (the TCP stacks desynchronize and stall if
the shim injection/stripping is wrong).
"""

from __future__ import annotations

import pytest

from repro.core.policy import (
    AllowAll,
    ContainmentPolicy,
    DefaultDeny,
    PolicyContext,
    ReflectAll,
    Rewriter,
)
from repro.core.verdicts import ContainmentDecision
from repro.farm import Farm, FarmConfig
from repro.net.addresses import IPv4Address
from repro.net.http import HttpParser, HttpRequest, HttpResponse


EXTERNAL_WEB_IP = "203.0.113.80"


def http_server(host, body=b"MALWARE-SAMPLE-BYTES", port=80):
    """A tiny HTTP server returning ``body`` for any GET."""
    served = []

    def on_accept(conn):
        parser = HttpParser("request")

        def on_data(c, data):
            for request in parser.feed(data):
                served.append(request)
                c.send(HttpResponse(200, body=body).to_bytes())

        conn.on_data = on_data
        conn.on_remote_close = lambda c: c.close()

    host.tcp.listen(port, on_accept)
    return served


def http_fetch_image(path="/bot.exe", target=EXTERNAL_WEB_IP, port=80,
                     results=None, delay=1.0):
    """Image factory: boot via DHCP, then HTTP GET and record response."""
    results = results if results is not None else []

    def image(host):
        from repro.services.dhcp import DhcpClient

        def fetch(configured_host):
            def connect():
                conn = configured_host.tcp.connect(IPv4Address(target), port)
                parser = HttpParser("response")
                state = {"failed": False}

                def on_data(c, data):
                    for response in parser.feed(data):
                        results.append(response)

                conn.on_established = lambda c: c.send(
                    HttpRequest("GET", path, {"Host": "cc.example"}).to_bytes()
                )
                conn.on_data = on_data
                conn.on_reset = lambda c: results.append("RESET")
                conn.on_fail = lambda c: results.append("FAIL")

            configured_host.sim.schedule(delay, connect)

        DhcpClient(host, on_configured=fetch).start()

    return image, results


def build_farm(policy, seed=11):
    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("test")
    sub.add_catchall_sink()
    web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
    served = http_server(web)
    image, results = http_fetch_image()
    inmate = sub.create_inmate(image_factory=image, policy=policy)
    return farm, sub, inmate, served, results


class TestDhcpBoot:
    def test_inmate_acquires_internal_address(self):
        farm, sub, inmate, _served, _results = build_farm(DefaultDeny())
        farm.run(until=60)
        assert inmate.host is not None
        assert inmate.host.ip is not None
        assert inmate.host.ip.is_rfc1918()
        assert sub.nat.internal_for(inmate.vlan) == inmate.host.ip
        assert sub.nat.global_for(inmate.vlan) is not None

    def test_two_inmates_get_distinct_addresses(self):
        farm = Farm(FarmConfig(seed=3))
        sub = farm.create_subfarm("test")
        image, _ = http_fetch_image()
        a = sub.create_inmate(image_factory=image, policy=DefaultDeny())
        b = sub.create_inmate(image_factory=image, policy=DefaultDeny())
        farm.run(until=120)
        assert a.host.ip != b.host.ip
        assert a.vlan != b.vlan


class TestForward:
    def test_forward_reaches_real_destination(self):
        farm, sub, inmate, served, results = build_farm(AllowAll())
        farm.run(until=120)
        assert len(served) == 1, "request should reach the real server"
        assert served[0].path == "/bot.exe"
        responses = [r for r in results if not isinstance(r, str)]
        assert len(responses) == 1
        assert responses[0].status == 200
        assert responses[0].body == b"MALWARE-SAMPLE-BYTES"

    def test_forwarded_flow_is_natted(self):
        farm, sub, inmate, served, results = build_farm(AllowAll())
        farm.run(until=120)
        # The external server must never see RFC 1918 space.
        upstream = farm.gateway.upstream_trace
        for record in upstream.select(point="upstream-out"):
            ip = record.ip
            if ip is not None:
                assert not ip.src.is_rfc1918(), f"leaked internal src: {ip}"

    def test_verdict_logged_as_forward(self):
        farm, sub, inmate, _served, _results = build_farm(AllowAll())
        farm.run(until=120)
        assert sub.containment_server.verdict_counts.get("FORWARD", 0) == 1


class TestDrop:
    def test_default_deny_blocks_and_resets(self):
        farm, sub, inmate, served, results = build_farm(DefaultDeny())
        farm.run(until=120)
        assert served == [], "nothing may reach the real server"
        assert "RESET" in results or "FAIL" in results
        assert sub.containment_server.verdict_counts.get("DROP", 0) == 1

    def test_drop_keeps_upstream_silent(self):
        farm, sub, inmate, served, _results = build_farm(DefaultDeny())
        farm.run(until=120)
        outbound = [
            r for r in farm.gateway.upstream_trace.select(point="upstream-out")
            if r.ip is not None and str(r.ip.dst) == EXTERNAL_WEB_IP
        ]
        assert outbound == []


class TestReflect:
    def test_reflection_lands_in_sink_with_original_destination(self):
        farm, sub, inmate, served, results = build_farm(ReflectAll())
        farm.run(until=120)
        assert served == [], "reflected traffic must not reach the target"
        sink = sub.sinks["sink"]
        assert sink.connections_accepted == 1
        record = sink.records[0]
        assert record.dst_port == 80
        assert b"GET /bot.exe" in bytes(record.payload)
        # Spoof-preserving reflection: the sink saw the address the
        # specimen actually dialled.
        sink_host = sub.containment_server  # noqa: F841  (doc only)

    def test_reflected_client_believes_connection_established(self):
        farm, sub, inmate, served, results = build_farm(ReflectAll())
        farm.run(until=120)
        # The client got no HTTP response (sink is silent) but also no
        # reset: from its perspective the connection simply idles.
        assert "RESET" not in results and "FAIL" not in results


class TestRedirect:
    def test_redirect_to_alternate_server(self):
        class RedirectToAlt(ContainmentPolicy):
            def decide(self, ctx):
                return self.redirect(ctx, IPv4Address("203.0.113.99"), 80,
                                     annotation="redirect to alt")

        farm = Farm(FarmConfig(seed=5))
        sub = farm.create_subfarm("test")
        web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
        served_real = http_server(web, body=b"REAL")
        alt = farm.add_external_host("altserver", "203.0.113.99")
        served_alt = http_server(alt, body=b"ALTERNATE")
        image, results = http_fetch_image()
        sub.create_inmate(image_factory=image, policy=RedirectToAlt())
        farm.run(until=120)
        assert served_real == []
        assert len(served_alt) == 1
        responses = [r for r in results if not isinstance(r, str)]
        assert responses and responses[0].body == b"ALTERNATE"


class TestRewrite:
    def test_rewrite_impersonation_without_real_target(self):
        """The containment server can impersonate a destination that
        need not exist (the auto-infection pattern of §6.6)."""

        class Impersonate(ContainmentPolicy):
            def decide(self, ctx):
                return self.rewrite(ctx, annotation="impersonating")

            def make_rewriter(self, ctx):
                class FakeServer(Rewriter):
                    def on_open(self, proxy):
                        pass  # never connect out

                    def on_client_data(self, proxy, data):
                        if b"\r\n\r\n" in data:
                            proxy.send_to_client(
                                HttpResponse(200, body=b"FROM-CS").to_bytes()
                            )

                return FakeServer()

        farm = Farm(FarmConfig(seed=7))
        sub = farm.create_subfarm("test")
        # Note: no external host for this IP exists at all.
        image, results = http_fetch_image(target="198.51.100.77")
        sub.create_inmate(image_factory=image, policy=Impersonate())
        farm.run(until=120)
        responses = [r for r in results if not isinstance(r, str)]
        assert len(responses) == 1
        assert responses[0].body == b"FROM-CS"

    def test_rewrite_proxy_modifies_request_and_response(self):
        """Figure 5 faithfully: GET bot.exe becomes GET cleanup.exe on
        the wire, and the 200 comes back as 404."""

        class Fig5Rewriter(Rewriter):
            def on_client_data(self, proxy, data):
                proxy.send_to_server(
                    data.replace(b"GET /bot.exe", b"GET /cleanup.exe")
                )

            def on_server_data(self, proxy, data):
                if data.startswith(b"HTTP/1.1 200"):
                    proxy.send_to_client(HttpResponse(404).to_bytes())
                else:
                    proxy.send_to_client(data)

        class Fig5Policy(ContainmentPolicy):
            def decide(self, ctx):
                return self.rewrite(ctx, annotation="fig5")

            def make_rewriter(self, ctx):
                return Fig5Rewriter()

        farm = Farm(FarmConfig(seed=9))
        sub = farm.create_subfarm("test")
        web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
        served = http_server(web, body=b"CLEANUP-BYTES")
        image, results = http_fetch_image()
        sub.create_inmate(image_factory=image, policy=Fig5Policy())
        farm.run(until=120)
        assert len(served) == 1
        assert served[0].path == "/cleanup.exe", "request rewritten in flight"
        responses = [r for r in results if not isinstance(r, str)]
        assert responses and responses[0].status == 404

    def test_rewrite_target_sees_inmate_global_address(self):
        """The nonce-leg NAT must show the inmate's global address to
        the real target, not the containment server's."""

        class Passthrough(ContainmentPolicy):
            def decide(self, ctx):
                return self.rewrite(ctx)

        farm = Farm(FarmConfig(seed=13))
        sub = farm.create_subfarm("test")
        web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
        seen_sources = []

        def on_accept(conn):
            seen_sources.append(conn.remote_ip)
            conn.on_data = lambda c, d: c.send(
                HttpResponse(200, body=b"ok").to_bytes())

        web.tcp.listen(80, on_accept)
        image, results = http_fetch_image()
        inmate = sub.create_inmate(image_factory=image, policy=Passthrough())
        farm.run(until=120)
        assert len(seen_sources) == 1
        assert seen_sources[0] == sub.nat.global_for(inmate.vlan)
        assert seen_sources[0] != sub.cs_ip


class TestLimit:
    def test_limit_still_delivers_but_slower(self):
        class Limited(ContainmentPolicy):
            def decide(self, ctx):
                return self.limit(ctx, rate=500.0,  # 500 B/s
                                  annotation="trickle")

        farm = Farm(FarmConfig(seed=15))
        sub = farm.create_subfarm("test")
        web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
        body = b"X" * 4000
        served = http_server(web, body=body)
        image, results = http_fetch_image()
        sub.create_inmate(image_factory=image, policy=Limited())
        farm.run(until=300)
        responses = [r for r in results if not isinstance(r, str)]
        assert len(served) == 1
        assert responses and responses[0].body == body
        # 4000 bytes at 500 B/s must take several seconds beyond the
        # unshaped baseline (which completes in well under a second).
        assert farm.sim.now >= 0  # sanity; detailed timing below

    def test_limit_timing_scales_with_rate(self):
        def run_with(policy_cls, seed):
            farm = Farm(FarmConfig(seed=seed))
            sub = farm.create_subfarm("test")
            web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
            http_server(web, body=b"Y" * 6000)
            image, results = http_fetch_image()
            sub.create_inmate(image_factory=image, policy=policy_cls())
            done = []

            def check():
                responses = [r for r in results if not isinstance(r, str)]
                if responses and not done:
                    done.append(farm.sim.now)

            from repro.sim.process import Process
            Process(farm.sim, 0.5, check, label="probe").start()
            farm.run(until=600)
            return done[0] if done else None

        class Fast(ContainmentPolicy):
            def decide(self, ctx):
                return self.limit(ctx, rate=100000.0)

        class Slow(ContainmentPolicy):
            def decide(self, ctx):
                return self.limit(ctx, rate=800.0)

        fast_done = run_with(Fast, seed=21)
        slow_done = run_with(Slow, seed=21)
        assert fast_done is not None and slow_done is not None
        assert slow_done > fast_done + 3.0


class TestShimAccounting:
    def test_shim_counters_match_flows(self):
        farm, sub, inmate, _served, _results = build_farm(AllowAll())
        farm.run(until=120)
        router = sub.router
        assert router.counters["shims_injected"] == 1
        assert router.counters["shims_stripped"] == 1
        assert router.counters["handoffs"] == 1
        assert router.counters["flows_created"] == 1
