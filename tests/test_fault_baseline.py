"""Empty fault plan ⇒ byte-identical digests vs the tracked baselines.

The fault plane's determinism contract (docs/RESILIENCE.md): an empty
`FaultPlan` installs nothing — no injector, no RNG streams, no
scheduled events, no telemetry families — so a faultless farm's run
digest is byte-identical to the pre-fault-plane build.  These tests
pin that against the digests tracked in `BENCH_hotpath.json` and
`BENCH_parallel.json`.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "benchmarks"))

from bench_hotpath import run_farm  # noqa: E402
from bench_parallel_scaling import build_sweep  # noqa: E402

from repro.core.policy import AllowAll  # noqa: E402
from repro.farm import Farm, FarmConfig  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.parallel.pool import run_campaign  # noqa: E402
from repro.parallel.tasks import TARGET_IP, _echo_server, \
    _streaming_image  # noqa: E402

pytestmark = pytest.mark.integration


def tracked(name):
    with open(os.path.join(REPO, name)) as handle:
        return json.load(handle)


class TestTrackedBaselines:
    def test_farm_digest_matches_bench_hotpath(self):
        """run_farm with the tracked determinism parameters must still
        produce the digest recorded in BENCH_hotpath.json."""
        baseline = tracked("BENCH_hotpath.json")["determinism"]["digest"]
        result = run_farm(seed=11, inmates=3, rounds=40, duration=120.0,
                          fastpath=True)
        assert result["digest"] == baseline

    def test_campaign_digest_matches_bench_parallel(self):
        """The tracked 8-shard campaign digest must be reproducible
        serially, fault plane present but empty."""
        baseline = tracked("BENCH_parallel.json")["campaign"]["digest"]
        campaign = build_sweep(8, 11, 0.0, subfarms=2, inmates=4,
                               rounds=100, duration=200.0)
        result = run_campaign(campaign, workers=1)
        assert result.ok
        assert result.digest == baseline


def digest_farm(config):
    """The bench_hotpath digest recipe over an explicit FarmConfig."""
    farm = Farm(config)
    _echo_server(farm.add_external_host("echo", TARGET_IP))
    sub = farm.create_subfarm("bench")
    sub.set_default_policy(AllowAll())
    for _ in range(3):
        sub.create_inmate(image_factory=_streaming_image(20))
    farm.run(until=90.0)
    digest = hashlib.sha256()
    digest.update(json.dumps(dict(sub.router.counters),
                             sort_keys=True).encode())
    for entry in sub.router.flow_log:
        digest.update(
            f"{entry.timestamp:.9f}|{entry.vlan}|{entry.verdict}"
            f"|{entry.orig}|{entry.policy}".encode())
    for rec in farm.gateway.upstream_trace.records:
        digest.update(rec.frame.to_bytes())
    digest.update(json.dumps(farm.telemetry_snapshot(include_traces=False),
                             sort_keys=True).encode())
    return digest.hexdigest()


class TestEmptyPlanIsInvisible:
    def test_explicit_empty_plan_matches_default(self):
        default = digest_farm(FarmConfig(seed=5, telemetry=True))
        empty_dict = digest_farm(FarmConfig(seed=5, telemetry=True,
                                            fault_plan={"specs": []}))
        empty_obj = digest_farm(FarmConfig(seed=5, telemetry=True,
                                           fault_plan=FaultPlan()))
        assert default == empty_dict == empty_obj

    def test_empty_plan_installs_no_injector(self):
        farm = Farm(FarmConfig(seed=5, fault_plan={"specs": []}))
        assert farm.config.fault_plan.is_empty
        assert farm.fault_injector is None
