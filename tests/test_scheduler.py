"""The adaptive shard scheduler: work-stealing digest parity against
serial runs, static-vs-steal equivalence, scheduling-honesty metadata,
and the oversubscription warning."""

from __future__ import annotations

import pytest

from repro.parallel import Campaign, ShardSpec, run_campaign
from repro.parallel.pool import SCHEDULERS

NOOP = "repro.parallel.tasks:noop_shard"
FARM = "repro.parallel.tasks:streaming_farm_shard"

TINY_FARM = {"subfarms": 1, "inmates": 1, "rounds": 5, "duration": 30.0}

pytestmark = pytest.mark.integration


def farm_campaign(count: int = 6, base_seed: int = 9) -> Campaign:
    return Campaign.seed_sweep("sched-parity", FARM,
                               params=dict(TINY_FARM),
                               count=count, base_seed=base_seed)


class TestStealParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_digest_matches_serial(self, workers):
        campaign = farm_campaign()
        serial = run_campaign(campaign, workers=1)
        stolen = run_campaign(campaign, workers=workers,
                              scheduler="steal")
        assert stolen.ok
        assert stolen.digest == serial.digest
        # The merged views (telemetry labels, summed metrics) must be
        # identical too — host names never leak into identities.
        assert stolen.merged["metrics"] == serial.merged["metrics"]

    def test_static_and_steal_agree(self):
        campaign = farm_campaign()
        static = run_campaign(campaign, workers=2, scheduler="static")
        stolen = run_campaign(campaign, workers=2, scheduler="steal")
        assert static.digest == stolen.digest
        assert static.merged["scheduler"]["mode"] == "static"
        assert stolen.merged["scheduler"]["mode"] == "steal"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            run_campaign(farm_campaign(count=2), workers=2,
                         scheduler="magic")
        assert SCHEDULERS == ("steal", "static")

    def test_chunk_size_still_accepted(self):
        # Legacy kwarg: sizes static blocks, ignored by steal.
        campaign = Campaign.seed_sweep("chunked", NOOP, count=6,
                                       base_seed=1)
        result = run_campaign(campaign, workers=2, chunk_size=3)
        assert result.ok


class TestSchedulingHonesty:
    def test_serial_run_records_host(self):
        result = run_campaign(farm_campaign(count=1), workers=1)
        (record,) = result.merged["hosts"].values()
        assert record["workers"] == 1
        assert record["shards"] == 1
        assert "host_cpus" in record and "sched_cpus" in record

    def test_parallel_run_records_host_cpus_and_stats(self):
        result = run_campaign(farm_campaign(count=4), workers=2)
        (record,) = result.merged["hosts"].values()
        assert record["workers"] == 2
        assert record["shards"] == 4
        stats = result.merged["scheduler"]
        assert stats["mode"] == "steal"
        assert stats["transport"] == "local"
        assert stats["dispatches"] >= 4
        assert len(stats["per_worker"]) == 2
        assert sum(w["shards"] for w in stats["per_worker"]) == 4

    def test_oversubscription_warns_one_line(self):
        # This container schedules 1 cpu, so 2 workers oversubscribe.
        import os

        try:
            sched = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            sched = os.cpu_count()
        if sched is None or sched >= 2:
            pytest.skip("host has enough cpus; nothing to warn about")
        with pytest.warns(RuntimeWarning, match="oversubscribed"):
            run_campaign(farm_campaign(count=2), workers=2)

    def test_hosts_and_stats_stay_out_of_the_digest(self):
        campaign = farm_campaign(count=2)
        serial = run_campaign(campaign, workers=1)
        parallel = run_campaign(campaign, workers=2)
        assert serial.digest == parallel.digest
        assert serial.merged.get("scheduler") is None
        assert parallel.merged["scheduler"]["workers"] == 2


class TestFaultedShardsUnderSteal:
    def test_injected_worker_error_not_respawned_forever(self):
        campaign = farm_campaign(count=3)
        plan = {"specs": [{"kind": "worker_error", "shard": 1}]}
        result = run_campaign(campaign, workers=2, fault_plan=plan)
        assert not result.ok
        (failure,) = result.failures
        assert failure["shard"] == 1
        assert failure["kind"] == "error"
        survivors = [r for r in result.shard_results if r.index != 1]
        assert all(r.ok for r in survivors)
