"""GRE tunnels: donated address space (§7.2), end to end."""

from __future__ import annotations

import pytest

from repro.core.policy import AllowAll
from repro.farm import Farm, FarmConfig
from repro.net.addresses import IPv4Address
from repro.net.gre import PROTO_GRE, decapsulate, encapsulate
from repro.net.packet import IPv4Packet, UDPDatagram
from tests.test_containment_end_to_end import (
    EXTERNAL_WEB_IP,
    http_fetch_image,
    http_server,
)

pytestmark = pytest.mark.integration

DONATED = "198.51.99.0/24"
POP_IP = "203.0.113.250"


class TestGreWireFormat:
    def test_round_trip(self):
        inner = IPv4Packet(IPv4Address("1.2.3.4"), IPv4Address("5.6.7.8"),
                           UDPDatagram(9, 10, b"inner payload"))
        outer = encapsulate(inner, IPv4Address("10.0.0.1"),
                            IPv4Address("10.0.0.2"))
        assert outer.proto == PROTO_GRE
        recovered = decapsulate(outer)
        assert recovered is not None
        assert recovered.src == inner.src and recovered.dst == inner.dst
        assert recovered.udp.payload == b"inner payload"

    def test_non_gre_rejected(self):
        packet = IPv4Packet(IPv4Address("1.2.3.4"), IPv4Address("5.6.7.8"),
                            UDPDatagram(9, 10, b"x"))
        assert decapsulate(packet) is None


def tiny_global_farm(seed=61):
    """A farm whose native global space holds only two inmates, so the
    third one must draw a tunneled address."""
    return Farm(FarmConfig(
        seed=seed,
        global_networks=["198.18.0.0/30"],  # 2 usable addresses
    ))


class TestTunneledAddressSpace:
    def test_pool_spills_into_donated_network(self):
        farm = tiny_global_farm()
        farm.add_gre_tunnel(DONATED, POP_IP)
        sub = farm.create_subfarm("test")
        from repro.inmates.images import idle_image

        inmates = [sub.create_inmate(image_factory=idle_image())
                   for _ in range(3)]
        farm.run(until=90)
        globals_ = [sub.nat.global_for(i.vlan) for i in inmates]
        assert all(g is not None for g in globals_)
        assert str(globals_[2]).startswith("198.51.99.")

    def test_flow_through_tunnel_round_trips(self):
        farm = tiny_global_farm()
        endpoint, pop = farm.add_gre_tunnel(DONATED, POP_IP)
        sub = farm.create_subfarm("test")
        web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
        served = http_server(web)

        from repro.inmates.images import idle_image

        # Two fillers exhaust the native /30...
        for _ in range(2):
            sub.create_inmate(image_factory=idle_image())
        # ...so this one lives in donated space.
        image, results = http_fetch_image()
        tunneled = sub.create_inmate(image_factory=image, policy=AllowAll())
        farm.run(until=180)

        global_ip = sub.nat.global_for(tunneled.vlan)
        assert str(global_ip).startswith("198.51.99.")
        responses = [r for r in results if not isinstance(r, str)]
        assert len(served) == 1, "request must reach the web server"
        assert responses and responses[0].status == 200
        # Both directions actually used the tunnel.
        assert endpoint.packets_encapsulated > 0
        assert pop.ingress_encapsulated > 0
        assert pop.egress_decapsulated == endpoint.packets_encapsulated

    def test_native_addresses_bypass_tunnel(self):
        farm = tiny_global_farm()
        endpoint, pop = farm.add_gre_tunnel(DONATED, POP_IP)
        sub = farm.create_subfarm("test")
        web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
        http_server(web)
        image, results = http_fetch_image()
        native = sub.create_inmate(image_factory=image, policy=AllowAll())
        farm.run(until=180)
        assert str(sub.nat.global_for(native.vlan)).startswith("198.18.0.")
        responses = [r for r in results if not isinstance(r, str)]
        assert responses and responses[0].status == 200
        assert endpoint.packets_encapsulated == 0
