"""Established-flow fast path: byte-level parity with the slow path.

Every test runs the same scripted packet sequence through two routers —
one with the fast path enabled, one without — and asserts the emissions
(as serialized wire bytes per output channel), the router counters, the
flow log, and the per-flow byte/packet accounting are identical.  The
compiled handlers are an optimization, never a behavior change.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..",
                                "benchmarks"))
from bench_hotpath import (  # noqa: E402
    RouterHarness,
    TARGET_IP,
    TARGET_PORT,
    run_farm,
)

from repro.core.server import CS_DEFAULT_PORT  # noqa: E402
from repro.core.verdicts import Verdict  # noqa: E402
from repro.net.addresses import IPv4Address  # noqa: E402
from repro.net.packet import (  # noqa: E402
    ACK,
    FIN,
    IPv4Packet,
    PSH,
    RST,
    SYN,
    TCPSegment,
    UDPDatagram,
)

VLAN = 2
SPORT = 40000
CLIENT_ISN = 1000
CS_ISN = 5000
DST_ISN = 9000


def wire_state(harness: RouterHarness) -> dict:
    """Everything observable about a harness run, serialized."""
    return {
        "to_vlan": [p.to_bytes() for p in harness.to_vlan],
        "to_service": [p.to_bytes() for p in harness.to_service],
        "upstream": [p.to_bytes() for p in harness.upstream],
        "counters": dict(harness.router.counters),
        "flow_log": [
            (e.timestamp, e.vlan, str(e.orig), e.verdict, e.policy)
            for e in harness.router.flow_log
        ],
        "flows": [
            (str(r.orig), r.phase.value, r.verdict_name,
             r.c2s_packets, r.s2c_packets, r.c2s_bytes, r.s2c_bytes,
             r.last_activity)
            for r in harness.router.flows()
        ],
    }


def run_both(script) -> None:
    """Run ``script(harness)`` with the fast path on and off and
    assert the observable outcomes are identical."""
    outcomes = []
    for fastpath in (True, False):
        harness = RouterHarness(seed=7, fastpath=fastpath)
        script(harness)
        harness.sim.run(until=600.0)  # flush shaped (LIMIT) emissions
        outcomes.append(wire_state(harness))
    fast, slow = outcomes
    assert fast == slow


def pump_tcp(harness: RouterHarness, record, rounds: int = 5) -> None:
    """Drive data both ways over an established TCP flow."""
    inmate_ip = record.orig.orig_ip
    payload = b"d" * 64
    seq = CLIENT_ISN + 1
    for i in range(rounds):
        harness.inmate_tcp(VLAN, inmate_ip, SPORT, TARGET_PORT,
                           seq, CS_ISN + 1, ACK | PSH, payload)
        seq += len(payload)
    if record.phase.value != "enforced" or record.decision is None:
        return
    if record.decision.verdict & Verdict.REWRITE:
        # Return data rides the containment-server leg.
        for i in range(rounds):
            reply = TCPSegment(CS_DEFAULT_PORT, record.mux_port,
                               CS_ISN + 100 + 64 * i, seq,
                               ACK | PSH, payload=b"r" * 64)
            harness.router.service_frame(
                _service_frame(harness, record, reply))
        return
    # Return data from the enforced destination.
    if record.spoof_preserve:
        reply_ip, local_ip = record.orig.resp_ip, inmate_ip
    else:
        reply_ip = record.dst_ip
        local_ip = record.nat_global or inmate_ip
    for i in range(rounds):
        reply = TCPSegment(record.dst_port, SPORT,
                           DST_ISN + 1 + 64 * i, seq,
                           ACK | PSH, payload=b"r" * 64)
        harness.router.upstream_packet(IPv4Packet(reply_ip, local_ip, reply))


def _service_frame(harness, record, transport):
    from repro.net.packet import EthernetFrame
    from repro.net.addresses import MacAddress
    return EthernetFrame(
        MacAddress("02:00:00:00:00:03"), harness.mac,
        IPv4Packet(harness.router.cs_ip, record.orig.orig_ip, transport))


def pump_udp(harness: RouterHarness, record, rounds: int = 5) -> None:
    inmate_ip = record.orig.orig_ip
    for i in range(rounds):
        harness.inmate_udp(VLAN, inmate_ip, SPORT, TARGET_PORT,
                           b"d" * (32 + i))
    if record.phase.value != "enforced" or record.decision is None:
        return
    if record.decision.verdict & Verdict.REWRITE:
        return  # CS->client UDP needs per-datagram shims; covered below
    if record.spoof_preserve:
        reply_ip, local_ip = record.orig.resp_ip, inmate_ip
    else:
        reply_ip = record.dst_ip
        local_ip = record.nat_global or inmate_ip
    for i in range(rounds):
        reply = UDPDatagram(record.dst_port, SPORT, b"r" * (32 + i))
        harness.router.upstream_packet(IPv4Packet(reply_ip, local_ip, reply))


TCP_CASES = [
    ("forward", Verdict.FORWARD, {}),
    ("limit", Verdict.LIMIT, {"rate": 4000.0}),
    ("drop", Verdict.DROP, {}),
    ("redirect", Verdict.REDIRECT,
     {"target": "198.51.100.9", "target_port": 8080}),
    ("reflect", Verdict.REFLECT, {"target": "198.51.100.44"}),
    ("rewrite", Verdict.REWRITE, {}),
]


@pytest.mark.parametrize("name,verdict,kwargs",
                         TCP_CASES, ids=[c[0] for c in TCP_CASES])
def test_tcp_parity(name, verdict, kwargs):
    def script(harness):
        record = harness.establish_flow(
            VLAN, SPORT, verdict=verdict,
            client_isn=CLIENT_ISN, dst_isn=DST_ISN, **kwargs)
        pump_tcp(harness, record)

    run_both(script)


@pytest.mark.parametrize("name,verdict,kwargs",
                         TCP_CASES, ids=[c[0] for c in TCP_CASES])
def test_udp_parity(name, verdict, kwargs):
    if verdict & Verdict.DROP:
        kwargs = dict(kwargs)

    def script(harness):
        record = harness.establish_udp_flow(
            VLAN, SPORT, verdict=verdict, **kwargs)
        pump_udp(harness, record)

    run_both(script)


def test_tcp_fin_and_rst_parity():
    """FIN close and RST abort traverse identically (RST falls back to
    the slow path from the compiled handler)."""
    def script(harness):
        record = harness.establish_flow(
            VLAN, SPORT, client_isn=CLIENT_ISN, dst_isn=DST_ISN)
        pump_tcp(harness, record, rounds=2)
        inmate_ip = record.orig.orig_ip
        harness.inmate_tcp(VLAN, inmate_ip, SPORT, TARGET_PORT,
                           CLIENT_ISN + 129, CS_ISN + 1, FIN | ACK)
        harness.inmate_tcp(VLAN, inmate_ip, SPORT, TARGET_PORT,
                           CLIENT_ISN + 130, CS_ISN + 1, RST)

    run_both(script)


def test_reverdict_after_eviction_parity():
    """A new SYN incarnation evicts the flow (and its handlers); the
    re-contained flow can land on a different verdict."""
    def script(harness):
        record = harness.establish_flow(
            VLAN, SPORT, client_isn=CLIENT_ISN, dst_isn=DST_ISN)
        pump_tcp(harness, record, rounds=3)
        # Same five-tuple, new ISN: port reuse after close.  The old
        # record is evicted mid-establishment and the new flow draws a
        # DROP this time.
        harness.establish_flow(
            VLAN, SPORT, verdict=Verdict.DROP,
            client_isn=CLIENT_ISN + 77777, dst_isn=DST_ISN)
        newest = harness.router.flows()[-1]
        pump_tcp(harness, newest, rounds=3)

    run_both(script)


def test_evicted_handlers_are_uninstalled():
    harness = RouterHarness(seed=7, fastpath=True)
    record = harness.establish_flow(VLAN, SPORT, client_isn=CLIENT_ISN,
                                    dst_isn=DST_ISN)
    assert record.fast_keys
    installed = list(record.fast_keys)
    harness.router._evict(record)
    for key in installed:
        assert key not in harness.router._fastpath
    assert not record.fast_keys


def test_reverdict_reinstalls_fresh_handlers():
    harness = RouterHarness(seed=7, fastpath=True)
    first = harness.establish_flow(VLAN, SPORT, client_isn=CLIENT_ISN,
                                   dst_isn=DST_ISN)
    first_keys = list(first.fast_keys)
    harness.establish_flow(VLAN, SPORT, verdict=Verdict.DROP,
                           client_isn=CLIENT_ISN + 5, dst_isn=DST_ISN)
    second = harness.router.flows()[-1]
    assert second is not first
    assert not first.fast_keys, "stale handlers must not survive eviction"
    assert second.fast_keys
    handler = harness.router._fastpath[second.fast_keys[0]]
    assert handler.owner is second
    # The orig-tuple key is shared between incarnations; the live
    # handler must belong to the newest record.
    assert second.fast_keys[0] in first_keys


def test_pumped_packets_bypass_slow_dispatch():
    """Parity tests are not vacuous: established-flow data really is
    handled by the compiled handlers, not the branch tree."""
    harness = RouterHarness(seed=7, fastpath=True)
    record = harness.establish_flow(VLAN, SPORT, client_isn=CLIENT_ISN,
                                    dst_isn=DST_ISN)
    calls = []
    original = harness.router._dispatch_known
    harness.router._dispatch_known = (
        lambda *a, **k: (calls.append(a), original(*a, **k)))
    pump_tcp(harness, record, rounds=4)
    harness.router._dispatch_known = original
    assert not calls, "post-verdict data should never hit the slow path"
    assert record.c2s_packets > 1 and record.s2c_packets > 1


def test_fastpath_disabled_installs_nothing():
    harness = RouterHarness(seed=7, fastpath=False)
    record = harness.establish_flow(VLAN, SPORT, client_isn=CLIENT_ISN,
                                    dst_isn=DST_ISN)
    assert not harness.router._fastpath
    assert not record.fast_keys


def test_udp_rewrite_return_content_parity():
    """CS->client UDP REWRITE content (shim-wrapped) stays on the slow
    path in both modes and reaches the client identically."""
    from repro.core.shim import ResponseShim

    def script(harness):
        record = harness.establish_udp_flow(VLAN, SPORT,
                                            verdict=Verdict.REWRITE)
        pump_udp(harness, record, rounds=3)
        shim = ResponseShim(record.orig, Verdict.REWRITE,
                            policy="bench").to_bytes()
        content = UDPDatagram(CS_DEFAULT_PORT, record.mux_port,
                              shim + b"rewritten-content")
        harness.router.service_frame(_service_frame(harness, record,
                                                    content))

    run_both(script)


# ----------------------------------------------------------------------
# Golden seed: the whole farm, byte for byte
# ----------------------------------------------------------------------
def _digest(result: dict) -> str:
    return hashlib.sha256(
        json.dumps(result, sort_keys=True).encode()).hexdigest()


def test_golden_seed_farm_parity():
    """End-to-end: same seed, fast path on vs off — identical flow
    logs, counters, upstream trace bytes, and virtual-clock outcome."""
    fast = run_farm(seed=23, inmates=2, rounds=12, duration=60.0,
                    fastpath=True)
    slow = run_farm(seed=23, inmates=2, rounds=12, duration=60.0,
                    fastpath=False)
    assert fast["digest"] == slow["digest"]
    assert fast["events"] == slow["events"]
    assert fast["packets_relayed"] == slow["packets_relayed"]
    # And replaying the same seed reproduces the digest exactly.
    again = run_farm(seed=23, inmates=2, rounds=12, duration=60.0,
                     fastpath=True)
    assert again["digest"] == fast["digest"]
