"""The safety filter stays authoritative under sustained degraded mode.

Satellite for the fault plane: when every containment server is DOWN
the subfarm runs degraded — but the safety filter's rate bounds must
keep applying *before* the pending policy, and nothing may leak
upstream no matter how aggressively an inmate connects.
"""

from __future__ import annotations

import pytest

from repro.core.policy import AllowAll
from repro.farm import Farm, FarmConfig
from repro.net.addresses import IPv4Address
from tests.test_containment_end_to_end import EXTERNAL_WEB_IP, http_server

pytestmark = pytest.mark.integration


def aggressive_image(attempts=12, spacing=2.0, target=EXTERNAL_WEB_IP,
                     port=80):
    """Image factory: boot via DHCP, then open one connection every
    ``spacing`` seconds — enough volume to trip a small safety budget."""

    def image(host):
        from repro.services.dhcp import DhcpClient

        def burst(configured_host):
            def connect():
                conn = configured_host.tcp.connect(IPv4Address(target), port)
                conn.on_established = lambda c: c.send(b"GET / HTTP/1.1\r\n")
            for i in range(attempts):
                configured_host.sim.schedule(1.0 + i * spacing, connect)

        DhcpClient(host, on_configured=burst).start()

    return image


def degraded_farm(max_per_window=4, attempts=12):
    farm = Farm(FarmConfig(
        seed=13,
        verdict_deadline=2.0,
        safety_max_flows_per_window=max_per_window,
        safety_max_flows_per_destination=max_per_window,
        safety_window=300.0,
        fault_plan={"specs": [{"kind": "cs_crash", "at": 5.0}]},
    ))
    http_server(farm.add_external_host("webserver", EXTERNAL_WEB_IP))
    sub = farm.create_subfarm("degraded")
    sub.set_default_policy(AllowAll())
    sub.create_inmate(image_factory=aggressive_image(attempts=attempts))
    return farm, sub


class TestSafetyUnderDegradedMode:
    def test_rate_bounds_hold_while_degraded(self):
        farm, sub = degraded_farm(max_per_window=4, attempts=12)
        farm.run(until=120.0)

        # The pool went degraded before the first connection attempt
        # (crash at t=5, inmates boot at t=30)...
        assert sub.resilience.pool.degraded
        # ...yet the safety budget still capped admission: only
        # max_per_window flows ever became flow records.
        assert sub.safety.flows_refused >= 1
        assert sub.safety.flows_admitted <= 4
        assert sub.router.counters["flows_created"] <= 4
        assert sub.router.counters["flows_refused"] \
            == sub.safety.flows_refused

    def test_admitted_flows_still_fail_closed(self):
        farm, sub = degraded_farm(max_per_window=4, attempts=12)
        farm.run(until=120.0)

        summary = sub.resilience.summary()
        # Every admitted flow was resolved by the pending policy, not
        # forwarded: fail-closed count equals admitted flows.
        assert summary["fail_closed"] == sub.safety.flows_admitted
        assert summary["fail_open"] == 0
        assert summary["degraded_refusals"] >= 1

    def test_nothing_leaks_upstream(self):
        farm, sub = degraded_farm(max_per_window=4, attempts=12)
        farm.run(until=120.0)

        leaked = [r for r in farm.gateway.upstream_trace.records
                  if r.ip is not None and str(r.ip.dst) == EXTERNAL_WEB_IP]
        assert not leaked

    def test_safety_alerts_recorded_during_outage(self):
        farm, sub = degraded_farm(max_per_window=4, attempts=12)
        farm.run(until=120.0)

        assert sub.safety.alerts
        alert = sub.safety.alerts[0]
        assert alert.vlan == 2  # the first allocated inmate VLAN
