"""Certificates: containment proofs, counterexamples, digest
stability, tamper detection, and order-independent campaign merges.
"""

from __future__ import annotations

import pytest

from repro.core.dsl import DslPolicy
from repro.core.policy import AllowAll, DefaultDeny
from repro.farm import Farm, FarmConfig
from repro.verify import (
    certify_farm,
    merge_certificates,
    verify_digest,
)

pytestmark = pytest.mark.integration


def _farm(policy=None, seed=7, name="c", **config):
    farm = Farm(FarmConfig(seed=seed, **config))
    sub = farm.create_subfarm(name)
    sub.set_default_policy(policy or AllowAll())
    farm.run(until=1.0)
    return farm


class TestContainedCertificates:
    def test_allow_all_is_contained_with_grants(self):
        cert = certify_farm(_farm(), label="allow")
        assert cert["result"] == "CONTAINED"
        assert cert["leak_count"] == 0
        assert cert["counterexample"] is None
        assert cert["exact"]
        assert cert["grants"]
        assert verify_digest(cert)

    def test_default_deny_grants_nothing(self):
        cert = certify_farm(_farm(DefaultDeny()), label="deny")
        assert cert["result"] == "CONTAINED"
        assert cert["grants"] == []

    def test_digest_stable_across_runs(self):
        a = certify_farm(_farm(), label="x")
        b = certify_farm(_farm(), label="x")
        assert a["digest"] == b["digest"]
        assert a["model_digest"] == b["model_digest"]

    def test_tampered_certificate_detected(self):
        cert = certify_farm(_farm(), label="t")
        assert verify_digest(cert)
        cert["leak_count"] = 99
        assert not verify_digest(cert)


class TestCounterexamples:
    def test_redirect_to_world_is_a_leak(self):
        policy = DslPolicy(
            "port 80/tcp -> redirect 203.0.113.99\ndefault -> drop\n")
        cert = certify_farm(_farm(policy), label="leaky")
        assert cert["result"] == "LEAKY"
        counterexample = cert["counterexample"]
        assert counterexample["kind"] == "redirect-to-world"
        path = counterexample["path"]
        # The minimal counterexample names the leaking
        # (src-vlan, dst, proto) path.
        assert path["src_vlan"] == "*"
        assert path["dst"] == "203.0.113.99"
        assert path["proto"] == "tcp"
        assert path["ports"] == [80, 80]
        assert any(step["step"] == "emit.upstream"
                   for step in counterexample["trace"])

    def test_grant_outside_allow_spec_is_a_leak(self):
        # Intent-violation check: the policy forwards ports 20-30 but
        # the operator only meant to allow port 80.
        policy = DslPolicy("port 20-30/tcp -> forward\ndefault -> drop\n")
        allow = [{"proto": "tcp", "port_lo": 80, "port_hi": 80}]
        cert = certify_farm(_farm(policy), label="wide", allow=allow)
        assert cert["result"] == "LEAKY"
        assert cert["counterexample"]["kind"] == "unexpected-grant"
        assert cert["counterexample"]["path"]["ports"] == [20, 30]
        assert cert["allow"] == allow
        # The same policy under a covering allow-spec is clean.
        covering = [{"proto": "tcp", "port_lo": 0, "port_hi": 65535}]
        assert certify_farm(_farm(policy), label="wide",
                            allow=covering)["result"] == "CONTAINED"

    def test_fail_open_pending_policy_is_a_leak(self):
        plan = {"specs": [{"kind": "shim_partition",
                           "start": 10.0, "end": 40.0}]}
        open_cert = certify_farm(
            _farm(DefaultDeny(), fault_plan=plan, verdict_deadline=5.0,
                  pending_policy="forward"),
            label="open")
        assert open_cert["result"] == "LEAKY"
        counterexample = open_cert["counterexample"]
        assert counterexample["kind"] == "pending-forward"
        assert counterexample["path"]["dst"] == "world"
        steps = [step["step"] for step in counterexample["trace"]]
        assert "fault.window" in steps
        assert "failover.pending" in steps
        # Fail-closed pending policy: same plan, no leak.
        closed_cert = certify_farm(
            _farm(DefaultDeny(), fault_plan=plan, verdict_deadline=5.0,
                  pending_policy="drop"),
            label="closed")
        assert closed_cert["result"] == "CONTAINED"


class TestCampaignMerge:
    def test_merge_is_order_independent(self):
        a = certify_farm(_farm(seed=1, name="a"), label="a")
        b = certify_farm(_farm(seed=2, name="b"), label="b")
        c = certify_farm(_farm(DefaultDeny(), seed=3, name="c"), label="c")
        forward = merge_certificates([a, b, c], label="camp")
        backward = merge_certificates([c, b, a], label="camp")
        assert forward["digest"] == backward["digest"]
        assert forward["schema"] == "gq.verify.campaign/1"
        assert forward["result"] == "CONTAINED"
        assert [shard["label"] for shard in forward["shards"]] \
            == ["a", "b", "c"]
        assert verify_digest(forward)

    def test_merge_dedups_identical_grants(self):
        a = certify_farm(_farm(seed=1, name="same"), label="s1")
        b = certify_farm(_farm(seed=1, name="same"), label="s2")
        merged = merge_certificates([a, b], label="dedup")
        assert len(merged["grants"]) == len(a["grants"])

    def test_merge_propagates_leaks(self):
        clean = certify_farm(_farm(seed=1, name="ok"), label="ok")
        policy = DslPolicy(
            "port 80/tcp -> redirect 203.0.113.99\ndefault -> drop\n")
        leaky = certify_farm(_farm(policy, seed=2, name="bad"),
                             label="bad")
        merged = merge_certificates([clean, leaky], label="mixed")
        assert merged["result"] == "LEAKY"
        assert merged["leak_count"] == leaky["leak_count"]
        assert merged["counterexample"] == leaky["counterexample"]

    def test_merge_of_nothing_is_none(self):
        assert merge_certificates([]) is None
        assert merge_certificates([None]) is None


class TestSerialParallelParity:
    def test_campaign_certificate_parity(self):
        """A fault-matrix campaign run serially and with two workers
        merges to the same campaign certificate."""
        from repro.experiments.fault_matrix import run_matrix

        serial = run_matrix(scenarios=["baseline"], seeds=[11, 12],
                            subfarms=1, inmates=2, rounds=6, workers=1)
        parallel = run_matrix(scenarios=["baseline"], seeds=[11, 12],
                              subfarms=1, inmates=2, rounds=6, workers=2)
        cert_serial = serial.merged["certificate"]
        cert_parallel = parallel.merged["certificate"]
        assert cert_serial is not None
        assert cert_serial["digest"] == cert_parallel["digest"]
        assert cert_serial["result"] == "CONTAINED"
