"""Streaming trace analysis and rotation (the Bro model, §6.5)."""

from __future__ import annotations

import pytest

from repro.core.policy import ReflectAll
from repro.farm import Farm, FarmConfig
from repro.net.capture import PacketTrace
from repro.net.addresses import IPv4Address, MacAddress
from repro.net.packet import EthernetFrame, IPv4Packet, SYN, TCPSegment
from repro.reporting.analyzer import ShimAnalyzer, SmtpActivityAnalyzer
from tests.test_containment_end_to_end import http_fetch_image

pytestmark = pytest.mark.integration


def dummy_frame(i):
    return EthernetFrame(
        MacAddress("02:00:00:00:00:01"), MacAddress("02:00:00:00:00:02"),
        IPv4Packet(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
                   TCPSegment(1000 + i, 80, flags=SYN)),
        vlan=5,
    )


class TestTraceRotation:
    def test_capped_trace_rotates_oldest(self):
        trace = PacketTrace(max_records=10)
        for i in range(25):
            trace.capture(float(i), dummy_frame(i), point="inmate")
        assert len(trace.records) == 10
        assert trace.rotated_out == 15
        assert trace.records[0].timestamp == 15.0

    def test_observers_see_rotated_records(self):
        trace = PacketTrace(max_records=5)
        seen = []
        trace.subscribe(lambda record: seen.append(record.timestamp))
        for i in range(20):
            trace.capture(float(i), dummy_frame(i))
        assert len(seen) == 20, "observers must see everything"
        assert len(trace.records) == 5


class TestStreamingEqualsPostHoc:
    def test_identical_results_on_the_same_run(self):
        farm = Farm(FarmConfig(seed=161))
        sub = farm.create_subfarm("stream")
        sub.add_catchall_sink()
        streaming_shims = ShimAnalyzer.streaming(sub.router.trace)
        streaming_smtp = SmtpActivityAnalyzer.streaming(sub.router.trace)
        image, _results = http_fetch_image()
        sub.create_inmate(image_factory=image, policy=ReflectAll())
        farm.run(until=120)

        posthoc_shims = ShimAnalyzer(sub.router.trace)
        posthoc_smtp = SmtpActivityAnalyzer(sub.router.trace)
        assert (streaming_shims.verdict_counts()
                == posthoc_shims.verdict_counts())
        assert len(streaming_shims.events) == len(posthoc_shims.events)
        assert streaming_smtp.sessions == posthoc_smtp.sessions

    def test_streaming_survives_rotation_posthoc_does_not(self):
        farm = Farm(FarmConfig(seed=162))
        sub = farm.create_subfarm("stream")
        sub.add_catchall_sink()
        streaming = ShimAnalyzer.streaming(sub.router.trace)
        sub.router.trace.max_records = 5  # brutal rotation
        image, _results = http_fetch_image()
        sub.create_inmate(image_factory=image, policy=ReflectAll())
        farm.run(until=120)

        assert streaming.verdict_counts().get("REFLECT", 0) == 1
        assert sub.router.trace.rotated_out > 0
