"""The resilience layer: deadlines, retries, failover, fail-closed.

These tests drive `repro.gateway.failover` through whole-farm runs with
injected faults: a partitioned shim link must fail closed, a crashed
primary must fail over to a standby, a restored server must be probed
back to HEALTHY, and fail-open must be impossible for flows whose
containment-server handshake never completed.
"""

from __future__ import annotations

import pytest

from repro.core.policy import AllowAll
from repro.farm import Farm, FarmConfig
from repro.gateway.failover import ResilienceConfig
from tests.test_containment_end_to_end import (
    EXTERNAL_WEB_IP,
    http_fetch_image,
    http_server,
)

pytestmark = pytest.mark.integration


def resilient_farm(specs, *, seed=7, pending_policy="drop",
                   verdict_deadline=3.0, extra_cs=0, inmates=1,
                   results=None, **config_kwargs):
    farm = Farm(FarmConfig(
        seed=seed,
        verdict_deadline=verdict_deadline,
        pending_policy=pending_policy,
        fault_plan={"specs": specs},
        **config_kwargs,
    ))
    http_server(farm.add_external_host("webserver", EXTERNAL_WEB_IP))
    sub = farm.create_subfarm("chaos")
    sub.set_default_policy(AllowAll())
    if extra_cs:
        sub.add_containment_servers(extra_cs)
    results = results if results is not None else []
    image, _ = http_fetch_image(results=results)
    for _ in range(inmates):
        sub.create_inmate(image_factory=image)
    return farm, sub, results


def upstream_web_frames(farm):
    return [r for r in farm.gateway.upstream_trace.records
            if r.ip is not None and str(r.ip.dst) == EXTERNAL_WEB_IP]


class TestFailClosed:
    def test_partition_drops_unverdicted_flow(self):
        """A fully partitioned shim link must produce a synthetic DROP
        annotated fail-closed — and nothing may reach upstream."""
        farm, sub, results = resilient_farm(
            [{"kind": "shim_partition", "start": 0.0}])
        farm.run(until=90.0)

        assert sub.resilience.fail_closed >= 1
        assert sub.resilience.fail_open == 0
        assert any(e.policy == "fail-closed" and e.verdict == "DROP"
                   for e in sub.router.flow_log)
        assert not upstream_web_frames(farm)
        assert "MALWARE" not in str(results)

    def test_forward_policy_cannot_fail_open_without_handshake(self):
        """pending_policy='forward' still fails closed when the CS
        handshake never completed: there is no ISN mapping to hand
        off, so the flow cannot be forwarded."""
        farm, sub, results = resilient_farm(
            [{"kind": "shim_partition", "start": 0.0}],
            pending_policy="forward")
        farm.run(until=90.0)

        assert sub.resilience.fail_closed >= 1
        assert sub.resilience.fail_open == 0
        assert not upstream_web_frames(farm)

    def test_retries_observe_backoff_before_giving_up(self):
        farm, sub, _ = resilient_farm(
            [{"kind": "shim_partition", "start": 0.0}])
        farm.run(until=90.0)
        # verdict_retries defaults to 2: two retries, then pending.
        assert sub.resilience.retries >= 2
        summary = sub.resilience.summary()
        assert summary["fail_closed"] >= 1
        assert summary["pending_policy"] == "drop"


class TestFailOpen:
    def test_hung_server_with_forward_policy_fails_open(self):
        """A hung CS answers the TCP handshake but never issues a
        verdict; with pending_policy='forward' the flow is released
        with a fail-open FORWARD after the retry budget."""
        farm, sub, results = resilient_farm(
            [{"kind": "cs_hang", "start": 0.0, "end": 1000.0}],
            pending_policy="forward")
        farm.run(until=120.0)

        assert sub.resilience.fail_open >= 1
        assert any(e.policy == "fail-open" and e.verdict == "FORWARD"
                   for e in sub.router.flow_log)
        # The released flow really did complete its fetch upstream.
        assert any(getattr(r, "status", None) == 200 for r in results)


class TestFailover:
    def test_crashed_primary_fails_over_to_standby(self):
        """With a standby pool, a silent primary costs retries but the
        flow still ends with a real verdict from the standby."""
        farm, sub, results = resilient_farm(
            [{"kind": "cs_crash", "at": 10.0, "server": 0}],
            extra_cs=1, inmates=2)
        farm.run(until=120.0)

        assert sub.resilience.failovers >= 1
        assert sub.resilience.fail_closed == 0
        # Both inmates (one homed to each server) completed their fetch.
        assert sum(1 for r in results
                   if getattr(r, "status", None) == 200) == 2
        summary = sub.resilience.summary()
        assert any(state == "down" for _, _, state in summary["transitions"])
        assert "down" in summary["servers"].values()
        assert "healthy" in summary["servers"].values()

    def test_probe_restores_crashed_server(self):
        """cs_crash + restore_after: the health probe notices the
        restored server and the degraded interval closes."""
        farm, sub, _ = resilient_farm(
            [{"kind": "cs_crash", "at": 10.0, "restore_after": 40.0}],
            verdict_deadline=2.0)
        farm.run(until=120.0)

        summary = sub.resilience.summary()
        states = [state for _, _, state in summary["transitions"]]
        assert "down" in states
        assert states[-1] == "healthy"
        assert summary["probes"] >= 1
        assert len(summary["degraded_intervals"]) == 1
        start, end = summary["degraded_intervals"][0]
        assert end is not None and end > start
        assert summary["degraded_seconds"] > 0
        assert not sub.resilience.pool.degraded


class TestDegradedMode:
    def test_degraded_mode_suspends_triggers(self):
        """An all-DOWN pool must not let absence-of-activity triggers
        misread the outage as inmate dormancy."""
        farm, sub, _ = resilient_farm(
            [{"kind": "cs_crash", "at": 10.0, "restore_after": 40.0}],
            verdict_deadline=2.0)
        farm.run(until=120.0)

        assert len(sub.trigger_engine.suspensions) == 1
        start, end = sub.trigger_engine.suspensions[0]
        assert end is not None and end > start

    def test_degraded_mode_refuses_new_flows_inline(self):
        """While degraded, new flows never even start a CS leg: the
        pending policy applies before a single shim packet moves."""
        farm = Farm(FarmConfig(
            seed=7, verdict_deadline=2.0,
            fault_plan={"specs": [{"kind": "cs_crash", "at": 10.0}]}))
        http_server(farm.add_external_host("webserver", EXTERNAL_WEB_IP))
        sub = farm.create_subfarm("chaos")
        sub.set_default_policy(AllowAll())
        results = []
        early, _ = http_fetch_image(results=results, delay=1.0)
        late, _ = http_fetch_image(results=results, delay=45.0)
        sub.create_inmate(image_factory=early)   # burns the retry budget
        sub.create_inmate(image_factory=late)    # arrives while degraded
        farm.run(until=120.0)

        summary = sub.resilience.summary()
        assert summary["fail_closed"] == 2
        assert summary["degraded_refusals"] >= 1
        assert not upstream_web_frames(farm)


class TestConfigSurface:
    def test_resilience_config_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(verdict_deadline=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(verdict_deadline=5.0, verdict_retries=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(verdict_deadline=5.0, pending_policy="maybe")
        with pytest.raises(ValueError):
            ResilienceConfig(verdict_deadline=5.0, retry_backoff=0.5)

    def test_farm_config_rejects_bad_pending_policy(self):
        with pytest.raises(ValueError):
            FarmConfig(pending_policy="yolo")

    def test_set_pending_policy_requires_resilience(self):
        farm = Farm(FarmConfig(seed=1))
        sub = farm.create_subfarm("plain")
        assert sub.resilience is None
        with pytest.raises(RuntimeError):
            sub.set_pending_policy("forward")

    def test_set_pending_policy_validates(self):
        farm = Farm(FarmConfig(seed=1, verdict_deadline=5.0))
        sub = farm.create_subfarm("guarded")
        with pytest.raises(ValueError):
            sub.set_pending_policy("yolo")
        sub.set_pending_policy("forward")
        assert sub.resilience.config.pending_policy == "forward"

    def test_default_farm_has_no_resilience_objects(self):
        farm = Farm(FarmConfig(seed=1))
        sub = farm.create_subfarm("plain")
        assert farm.fault_injector is None
        assert sub.resilience is None
        assert sub.router.shim_link_faults is None
        assert sub.router.resilience is None
