"""§7.1 "Unexpected visitors": Storm proxy bots and the FTP jobs."""

from __future__ import annotations

from conftest import once

from repro.experiments.storm_infiltration import run_both


def render(results) -> str:
    lines = [
        "Storm proxy-bot containment postures (§7.1)",
        "",
        f"{'POSTURE':<8} {'OVERLAY CONNS':>13} {'SOCKS JOBS':>10} "
        f"{'FTP AT SINK':>11} {'JOBS SUCCEEDED':>14} {'SITE DEFACED':>12}",
        "-" * 76,
    ]
    for posture, result in results.items():
        lines.append(
            f"{posture:<8} {result.overlay_connections:>13} "
            f"{result.socks_jobs:>10} {result.ftp_attempts_at_sink:>11} "
            f"{result.jobs_succeeded:>14} "
            f"{'YES' if result.site_defaced else 'no':>12}"
        )
    lines.append("-" * 76)
    lines.append(
        "The tight policy preserved reachability and C&C while the "
        "reflect-\neverything-else stance caught the iframe-injection "
        "jobs at the sink;\nthe loose counterfactual let the site get "
        "defaced."
    )
    return "\n".join(lines)


def test_storm_iframe(benchmark, emit):
    results = once(benchmark, run_both, duration=900.0)
    emit("storm_iframe", render(results))

    tight, loose = results["tight"], results["loose"]
    assert tight.overlay_connections > 0
    assert tight.ftp_attempts_at_sink > 0
    assert tight.jobs_succeeded == 0 and not tight.site_defaced
    assert loose.jobs_succeeded > 0 and loose.site_defaced
    assert tight.overlay_connections == loose.overlay_connections
