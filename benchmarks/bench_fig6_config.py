"""Figure 6: the containment server configuration file."""

from __future__ import annotations

from conftest import once

from repro.core.config import ContainmentConfig, SampleLibrary, apply_config
from repro.experiments.figure7 import BOTFARM_CONFIG
from repro.farm import Farm, FarmConfig
from repro.malware.corpus import Sample


def _parse_and_apply():
    farm = Farm(FarmConfig(seed=1))
    sub = farm.create_subfarm("Botfarm")
    library = SampleLibrary()
    library.add("rustock.100921.a.exe", Sample("rustock"))
    library.add("grum.100818.a.exe", Sample("grum"))
    config = ContainmentConfig.parse(BOTFARM_CONFIG)
    policies = apply_config(config, sub, library)
    return config, sub, policies


def render(config, sub) -> str:
    lines = [
        "Figure 6 — containment configuration, parsed and applied",
        "",
        "Input:",
    ]
    lines.extend("    " + line for line in BOTFARM_CONFIG.strip().splitlines())
    lines.append("")
    lines.append("Resulting assignment:")
    for vlan in (16, 17, 18, 19, 20):
        policy = sub.policy_map.resolve(vlan)
        triggers = config.triggers_for_vlan(vlan)
        lines.append(
            f"    VLAN {vlan}: decider={policy.policy_name:<12} "
            f"triggers={len(triggers)}"
        )
    lines.append(f"    services: {sorted(sub.services)}")
    return "\n".join(lines)


def test_fig6_config(benchmark, emit):
    config, sub, policies = once(benchmark, _parse_and_apply)
    emit("fig6_config", render(config, sub))
    assert sub.policy_map.resolve(16).policy_name == "Rustock"
    assert sub.policy_map.resolve(19).policy_name == "Grum"
    assert sub.policy_map.resolve(20).policy_name == "DefaultDeny"
    assert len(config.triggers_for_vlan(17)) == 1
    # The autoinfect service section configured the policies.
    for policy in policies.values():
        assert str(policy.infect_address) == "10.9.8.7"
        assert policy.infect_port == 6543
