"""Figure 3: independent subfarms over disjoint VLAN ranges."""

from __future__ import annotations

from conftest import once

from repro.core.policy import AllowAll, DefaultDeny, ReflectAll
from repro.farm import Farm, FarmConfig
from tests.test_containment_end_to_end import (
    EXTERNAL_WEB_IP,
    http_fetch_image,
    http_server,
)


def _run():
    farm = Farm(FarmConfig(seed=19))
    web = farm.add_external_host("webserver", EXTERNAL_WEB_IP)
    served = http_server(web)
    subs, results = {}, {}
    for name, policy in (("deployment", AllowAll()),
                         ("development", ReflectAll()),
                         ("locked", DefaultDeny())):
        sub = farm.create_subfarm(name)
        sub.add_catchall_sink()
        image, res = http_fetch_image()
        sub.create_inmate(image_factory=image, policy=policy)
        subs[name] = sub
        results[name] = res
    farm.run(until=120)
    return farm, subs, results, served


def render(subs, served) -> str:
    lines = [
        "Figure 3 — parallel subfarms, one gateway, disjoint VLAN sets",
        "",
        f"{'SUBFARM':<12} {'VLANS':<10} {'CS':<12} {'VERDICTS':<24} "
        f"{'SINK HITS':>9}",
        "-" * 72,
    ]
    for name, sub in subs.items():
        verdicts = dict(sub.containment_server.verdict_counts)
        sink = sub.sinks["sink"].connections_accepted
        lines.append(
            f"{name:<12} {str(sorted(sub.router.vlan_ids)):<10} "
            f"{str(sub.cs_ip):<12} {str(verdicts):<24} {sink:>9}"
        )
    lines.append("-" * 72)
    lines.append(f"requests that reached the real web server: {len(served)} "
                 f"(deployment only)")
    return "\n".join(lines)


def test_fig3_subfarms(benchmark, emit):
    farm, subs, results, served = once(benchmark, _run)
    emit("fig3_subfarms", render(subs, served))
    assert len(served) == 1
    assert subs["development"].sinks["sink"].connections_accepted == 1
    assert subs["locked"].containment_server.verdict_counts == {"DROP": 1}
    vlan_sets = [sub.router.vlan_ids for sub in subs.values()]
    for i, a in enumerate(vlan_sets):
        for b in vlan_sets[i + 1:]:
            assert not (a & b)
