"""§3/§8: behaviour elicited vs harm inflicted, per regime."""

from __future__ import annotations

from conftest import once

from repro.experiments.containment_tradeoff import run_all_regimes


def render(regimes) -> str:
    lines = [
        "Containment trade-off: behaviour elicited vs harm inflicted",
        "(mixed population: Grum, Rustock, MegaD, clickbot; same world, "
        "same duration)",
        "",
        f"{'REGIME':<15} {'FAMILIES':>8} {'BEHAVIOUR':>9} {'HARVEST':>8} "
        f"{'SPAM OUT':>8} {'FRAUD CLICKS':>12} {'BLACKLISTED':>11}",
        "-" * 80,
    ]
    for regime, result in regimes.items():
        lines.append(
            f"{regime:<15} {result.families_active:>8} "
            f"{result.behaviour_score:>9} {result.spam_harvested:>8} "
            f"{result.spam_delivered_outside:>8} "
            f"{result.clicks_on_real_publishers:>12} "
            f"{result.inmates_blacklisted:>11}"
        )
    lines.append("-" * 80)
    lines.append(
        "Shape: unconstrained maximizes both axes; isolation zeroes "
        "both; static\nrules (Botlab) lose most behaviour; GQ matches "
        "unconstrained behaviour at\nzero harm — the paper's central "
        "claim."
    )
    return "\n".join(lines)


def test_containment_tradeoff(benchmark, emit):
    regimes = once(benchmark, run_all_regimes, duration=900.0)
    emit("containment_tradeoff", render(regimes))

    unconstrained = regimes["unconstrained"]
    isolation = regimes["isolation"]
    botlab = regimes["botlab-static"]
    gq = regimes["gq"]

    assert unconstrained.harm_score > 100
    assert unconstrained.inmates_blacklisted > 0
    assert isolation.harm_score == 0 and isolation.families_active == 0
    assert botlab.families_active < gq.families_active
    assert gq.harm_score == 0
    assert gq.families_active == 4
    assert gq.behaviour_score > unconstrained.behaviour_score * 0.8
    assert gq.spam_harvested > 100
