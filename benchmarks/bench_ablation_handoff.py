"""Ablation: endpoint handoff vs keeping the containment server in
the path.

§5.4: "Once the gateway has established connectivity between the
intended endpoints, it alone enforces endpoint control, conserving
resources on the containment server."  This ablation quantifies that
design choice: the same workload runs once under FORWARD (verdict,
handoff, gateway-only relay) and once under a pass-through REWRITE
(the containment server proxies every byte), and we compare the load
that reaches the containment server.
"""

from __future__ import annotations

from conftest import once

from repro.core.policy import AllowAll, ContainmentPolicy
from repro.farm import Farm, FarmConfig
from repro.net.addresses import IPv4Address
from repro.net.http import HttpParser, HttpRequest, HttpResponse
from repro.services.dhcp import DhcpClient

WEB_IP = "203.0.113.80"
TRANSFER_SIZE = 64 * 1024  # per fetch


class PassthroughRewrite(ContainmentPolicy):
    """Content control with a do-nothing rewriter: maximum CS load."""

    def decide(self, ctx):
        return self.rewrite(ctx, annotation="ablation passthrough")


def _run(policy_cls, seed=33, fetches=8):
    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("ablation")
    web = farm.add_external_host("webserver", WEB_IP)
    body = b"X" * TRANSFER_SIZE

    def on_accept(conn):
        parser = HttpParser("request")

        def on_data(c, data):
            for _request in parser.feed(data):
                c.send(HttpResponse(200, body=body).to_bytes())

        conn.on_data = on_data
        conn.on_remote_close = lambda c: c.close()

    web.tcp.listen(80, on_accept)

    completed = []

    def image(host):
        def fetch(configured_host, remaining):
            if remaining <= 0:
                return
            conn = configured_host.tcp.connect(IPv4Address(WEB_IP), 80)
            parser = HttpParser("response")

            def on_data(c, data):
                for response in parser.feed(data):
                    completed.append(len(response.body))
                    c.close()
                    configured_host.sim.schedule(
                        2.0, fetch, configured_host, remaining - 1)

            conn.on_established = lambda c: c.send(
                HttpRequest("GET", "/blob").to_bytes())
            conn.on_data = on_data

        DhcpClient(host, on_configured=lambda h: fetch(h, fetches)).start()

    sub.create_inmate(image_factory=image, policy=policy_cls())
    farm.run(until=600)
    return {
        "completed": len(completed),
        "bytes": sum(completed),
        "cs_packets": sub.cs_host.packets_received,
        "cs_bytes_rx": sum(
            c.bytes_received for c in sub.cs_host.tcp.connections()
        ),
    }


def _run_both():
    return {
        "handoff (FORWARD)": _run(AllowAll),
        "cs-in-path (REWRITE passthrough)": _run(PassthroughRewrite),
    }


def render(results) -> str:
    lines = [
        "Ablation — endpoint handoff vs containment server in the path",
        f"(workload: 8 HTTP fetches of {TRANSFER_SIZE // 1024} KiB each)",
        "",
        f"{'MODE':<34} {'FETCHES':>7} {'APP BYTES':>10} "
        f"{'CS PACKETS':>10}",
        "-" * 66,
    ]
    for mode, stats in results.items():
        lines.append(
            f"{mode:<34} {stats['completed']:>7} {stats['bytes']:>10} "
            f"{stats['cs_packets']:>10}"
        )
    handoff = results["handoff (FORWARD)"]["cs_packets"]
    in_path = results["cs-in-path (REWRITE passthrough)"]["cs_packets"]
    lines.append("-" * 66)
    lines.append(
        f"Handoff cuts containment-server packet load by "
        f"{in_path / max(handoff, 1):.0f}x for identical application "
        f"outcomes —\nwhy §5.4 separates endpoint control (decide once, "
        f"gateway enforces) from\ncontent control (server stays in the "
        f"path only when it must rewrite)."
    )
    return "\n".join(lines)


def test_ablation_handoff(benchmark, emit):
    results = once(benchmark, _run_both)
    emit("ablation_handoff", render(results))
    handoff = results["handoff (FORWARD)"]
    in_path = results["cs-in-path (REWRITE passthrough)"]
    # Identical application outcome...
    assert handoff["completed"] == in_path["completed"] > 0
    assert handoff["bytes"] == in_path["bytes"]
    # ...at a fraction of the containment-server cost.
    assert handoff["cs_packets"] * 5 < in_path["cs_packets"]
