"""Hot-path benchmark: established-flow forwarding, flow setup, and
end-to-end farm throughput, with a determinism check.

Three measurements (see docs/PERFORMANCE.md for methodology):

1. *Forwarding* — a standalone :class:`SubfarmRouter` harness drives an
   established (post-verdict) TCP flow and pumps data packets through
   both directions, with the fast path disabled ("before") and enabled
   ("after").  This isolates the per-packet router cost the tentpole
   optimizes and is where the ≥2× target applies.
2. *Flow setup* — the same harness measures full shim round-trips
   (SYN → CS handshake → request/response shim → handoff) per second:
   the slow-path cost every flow pays exactly once.
3. *End-to-end* — a whole farm (gateway, switches, host TCP stacks,
   containment server) runs a streaming workload; virtual events/sec
   and packets/sec of wall-clock time, before/after.

Determinism: the end-to-end scenario is run twice with the same seed
and digested (flow logs, counters, upstream trace bytes); the digest
must match run-to-run AND fastpath-on vs fastpath-off.  ``--quick``
runs only this check (CI smoke) and exits non-zero on drift.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py          # full, writes BENCH_hotpath.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick  # determinism smoke only
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from time import perf_counter

from repro.core.policy import AllowAll
from repro.core.server import CS_DEFAULT_PORT
from repro.core.shim import ResponseShim
from repro.core.verdicts import Verdict
from repro.farm import Farm, FarmConfig
from repro.gateway.flowtable import EMIT_UPSTREAM, EMIT_VLAN
from repro.gateway.nat import AddressPool, InboundMode, NatTable
from repro.gateway.router import SubfarmRouter
from repro.gateway.safety import SafetyFilter
from repro.net.wirebatch import BatchOutput, ORIGIN_UPSTREAM, WireBatch
from repro.net.addresses import IPv4Address, IPv4Network, MacAddress
from repro.net.packet import (
    ACK,
    EthernetFrame,
    IPv4Packet,
    PROTO_TCP,
    PSH,
    SYN,
    TCPSegment,
    UDPDatagram,
)
from repro.services.dhcp import DhcpClient
from repro.sim.engine import Simulator

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TARGET_IP = "203.0.113.80"
TARGET_PORT = 80


# ----------------------------------------------------------------------
# Router micro-harness
# ----------------------------------------------------------------------
class RouterHarness:
    """A SubfarmRouter wired to capture-only emit stubs, driven by
    hand-crafted packets so no host stacks or links dilute the
    measurement."""

    def __init__(self, seed: int = 7, fastpath: bool = True) -> None:
        self.sim = Simulator(seed=seed)
        internal = AddressPool([IPv4Network("10.100.0.0/16")])
        global_pool = AddressPool([IPv4Network("198.18.0.0/24")])
        self.nat = NatTable(internal, global_pool,
                            inbound_mode=InboundMode.FORWARD)
        self.to_vlan = []
        self.to_service = []
        self.upstream = []
        self.router = SubfarmRouter(
            sim=self.sim,
            name="bench",
            vlan_ids={2},
            nat=self.nat,
            safety=SafetyFilter(10 ** 9, 10 ** 9, 60.0),
            cs_ip=IPv4Address("10.3.0.1"),
            cs_tcp_port=CS_DEFAULT_PORT,
            cs_udp_port=CS_DEFAULT_PORT,
            gateway_ip=IPv4Address("10.100.0.1"),
            dns_ip=None,
            emit_to_vlan=lambda vlan, p: self.to_vlan.append(p),
            emit_to_service=lambda ip, p: self.to_service.append(p),
            emit_upstream=self.upstream.append,
        )
        self.router.fastpath_enabled = fastpath
        # Bound capture so multi-hundred-thousand-packet pumps do not
        # hold every frame (identical cost in both modes).
        self.router.trace.max_records = 256
        self.mac = MacAddress("02:00:00:00:00:02")

    def drain(self) -> None:
        self.to_vlan.clear()
        self.to_service.clear()
        self.upstream.clear()

    def inmate_tcp(self, vlan, src, sport, dport, seq, ack, flags,
                   payload=b"") -> None:
        segment = TCPSegment(sport, dport, seq, ack, flags, payload=payload)
        packet = IPv4Packet(src, IPv4Address(TARGET_IP), segment)
        frame = EthernetFrame(self.mac, MacAddress("02:00:00:00:00:01"),
                              packet, vlan=vlan)
        self.router.inmate_frame(frame, vlan)

    def _shim_flow(self, record, target, target_port):
        if target is None:
            return record.orig
        from repro.net.flow import FiveTuple
        orig = record.orig
        return FiveTuple(orig.orig_ip, orig.orig_port, IPv4Address(target),
                         target_port if target_port is not None
                         else orig.resp_port, orig.proto)

    def establish_flow(self, vlan: int, sport: int,
                       verdict: Verdict = Verdict.FORWARD,
                       target=None, target_port=None, rate=None,
                       client_isn: int = 1000, dst_isn: int = 9000):
        """Run one TCP flow through the full shim protocol to its
        post-verdict phase and return the FlowRecord."""
        router = self.router
        inmate_ip = self.nat.bind(vlan)
        cs_isn = 5000
        self.inmate_tcp(vlan, inmate_ip, sport, TARGET_PORT,
                        client_isn, 0, SYN)
        record = router.flows()[-1]
        mux = record.mux_port
        # Containment server SYN-ACK.
        synack = TCPSegment(CS_DEFAULT_PORT, mux, cs_isn,
                            client_isn + 1, SYN | ACK)
        router.service_frame(EthernetFrame(
            MacAddress("02:00:00:00:00:03"), self.mac,
            IPv4Packet(router.cs_ip, inmate_ip, synack)))
        # Client ACK completes the handshake; the request shim goes in.
        self.inmate_tcp(vlan, inmate_ip, sport, TARGET_PORT,
                        client_isn + 1, cs_isn + 1, ACK)
        # Containment server answers with the response shim.
        shim = ResponseShim(self._shim_flow(record, target, target_port),
                            verdict, policy="bench", rate=rate).to_bytes()
        response = TCPSegment(CS_DEFAULT_PORT, mux, cs_isn + 1,
                              client_isn + 1 + record.c2s_inj,
                              ACK | PSH, payload=shim)
        router.service_frame(EthernetFrame(
            MacAddress("02:00:00:00:00:03"), self.mac,
            IPv4Packet(router.cs_ip, inmate_ip, response)))
        if verdict & (Verdict.DROP | Verdict.REWRITE):
            return record  # no handoff: terminal or CS-coupled
        # Destination SYN-ACK completes the handoff.  REFLECT preserves
        # the spoofed original destination; REDIRECT answers from the
        # new target; FORWARD/LIMIT from the original one.
        if record.spoof_preserve:
            reply_ip, local_ip = record.orig.resp_ip, inmate_ip
        else:
            reply_ip = record.dst_ip
            local_ip = record.nat_global or inmate_ip
        dst_synack = TCPSegment(record.dst_port, sport, dst_isn,
                                client_isn + 1, SYN | ACK)
        router.upstream_packet(IPv4Packet(reply_ip, local_ip, dst_synack))
        return record

    def inmate_udp(self, vlan, src, sport, dport, payload=b"") -> None:
        datagram = UDPDatagram(sport, dport, payload)
        packet = IPv4Packet(src, IPv4Address(TARGET_IP), datagram)
        frame = EthernetFrame(self.mac, MacAddress("02:00:00:00:00:01"),
                              packet, vlan=vlan)
        self.router.inmate_frame(frame, vlan)

    def establish_udp_flow(self, vlan: int, sport: int,
                           verdict: Verdict = Verdict.FORWARD,
                           target=None, target_port=None, rate=None,
                           first_payload: bytes = b"hello"):
        """Run one UDP flow through the shim protocol (first datagram
        diverted to the CS, shim response applies the verdict)."""
        router = self.router
        inmate_ip = self.nat.bind(vlan)
        self.inmate_udp(vlan, inmate_ip, sport, TARGET_PORT, first_payload)
        record = router.flows()[-1]
        shim = ResponseShim(self._shim_flow(record, target, target_port),
                            verdict, policy="bench", rate=rate).to_bytes()
        reply = UDPDatagram(CS_DEFAULT_PORT, record.mux_port, shim)
        router.service_frame(EthernetFrame(
            MacAddress("02:00:00:00:00:03"), self.mac,
            IPv4Packet(router.cs_ip, inmate_ip, reply)))
        return record


def bench_forwarding(fastpath: bool, packets: int, seed: int = 7,
                     repeats: int = 3) -> dict:
    """Packets/sec through an established flow, both directions.

    Best of ``repeats`` timed pumps: wall-clock noise (a shared CPU, a
    GC pause) only ever makes a run slower, so the fastest repeat is
    the most faithful estimate of the code's cost.
    """
    harness = RouterHarness(seed=seed, fastpath=fastpath)
    record = harness.establish_flow(vlan=2, sport=40000)
    assert record.phase.value == "enforced", record.phase
    inmate_ip = record.orig.orig_ip
    payload = b"x" * 512
    # Prebuilt packets: the router copies before mutating, so one
    # template per direction keeps allocation noise out of the loop.
    c2d = TCPSegment(40000, TARGET_PORT, 2000, 9001, ACK | PSH,
                     payload=payload)
    frame = EthernetFrame(harness.mac, MacAddress("02:00:00:00:00:01"),
                          IPv4Packet(inmate_ip, IPv4Address(TARGET_IP), c2d),
                          vlan=2)
    d2c = IPv4Packet(IPv4Address(TARGET_IP),
                     record.nat_global or inmate_ip,
                     TCPSegment(TARGET_PORT, 40000, 9500, 2001, ACK | PSH,
                                payload=payload))
    router = harness.router
    half = packets // 2
    best = float("inf")
    forwarded = 0
    for _ in range(repeats):
        harness.drain()
        started = perf_counter()
        for _ in range(half):
            router.inmate_frame(frame, 2)
        for _ in range(half):
            router.upstream_packet(d2c)
        elapsed = perf_counter() - started
        best = min(best, elapsed)
        forwarded = len(harness.to_vlan) + len(harness.upstream)
    return {
        "fastpath": fastpath,
        "packets": 2 * half,
        "forwarded": forwarded,
        "seconds": round(best, 4),
        "packets_per_sec": round(2 * half / best) if best else 0,
    }


def _build_pump_batches(record, chunk: int, payload: bytes):
    """The forwarding pump's two directions as prebuilt WireBatches:
    ``chunk`` client→destination rows and ``chunk`` destination→client
    rows, each a single same-key run (the shape the gateway's trunk
    coalescing produces for a streaming flow)."""
    inmate_ip = record.orig.orig_ip
    nat_global = record.nat_global or inmate_ip
    target = IPv4Address(TARGET_IP).value
    size = len(payload)
    c2d = WireBatch()
    for index in range(chunk):
        c2d.append_tcp(inmate_ip.value, 40000, target, TARGET_PORT,
                       2000 + index * size, 9001, ACK | PSH, 65535,
                       payload, vlan=2)
    d2c = WireBatch()
    for index in range(chunk):
        d2c.append_tcp(target, TARGET_PORT, nat_global.value, 40000,
                       9500 + index * size, 2001, ACK | PSH, 65535,
                       payload, origin=ORIGIN_UPSTREAM)
    return c2d, d2c


def bench_batch(packets: int, seed: int = 7, chunk: int = 256,
                repeats: int = 3) -> dict:
    """Packets/sec through the batched struct-of-arrays datapath.

    Same established flow and packet mix as :func:`bench_forwarding`,
    but rows arrive as prebuilt :class:`WireBatch` chunks and run
    through ``ingest_batch`` — measured once table-apply only
    (``ingest``, comparable to the scalar pump, which also never
    serializes) and once including the per-run wire serialization pass
    (``wire``).
    """
    harness = RouterHarness(seed=seed, fastpath=True)
    record = harness.establish_flow(vlan=2, sport=40000)
    assert record.phase.value == "enforced", record.phase
    payload = b"x" * 512
    c2d, d2c = _build_pump_batches(record, chunk, payload)
    router = harness.router
    iters = max(1, packets // (2 * chunk))
    total = 2 * chunk * iters
    best_ingest = best_wire = float("inf")
    for _ in range(repeats):
        harness.drain()
        started = perf_counter()
        for _ in range(iters):
            out = BatchOutput()
            router.ingest_batch(c2d, out)
            router.ingest_batch(d2c, out)
        best_ingest = min(best_ingest, perf_counter() - started)
        started = perf_counter()
        for _ in range(iters):
            out = BatchOutput()
            router.ingest_batch(c2d, out)
            router.ingest_batch(d2c, out)
            out.serialize()
        best_wire = min(best_wire, perf_counter() - started)
    return {
        "packets": total,
        "chunk": chunk,
        "ingest_seconds": round(best_ingest, 4),
        "ingest_packets_per_sec": round(total / best_ingest)
        if best_ingest else 0,
        "wire_seconds": round(best_wire, 4),
        "wire_packets_per_sec": round(total / best_wire)
        if best_wire else 0,
    }


def batch_parity(seed: int = 7, rows: int = 64) -> dict:
    """Byte-parity gate: the same rows pumped scalar (one frame at a
    time through ``inmate_frame``/``upstream_packet``) and batched
    (one ``ingest_batch`` call) must produce identical wire bytes per
    emission channel, identical router counters, and identical
    flow-table stats."""
    payload = b"x" * 512
    target = IPv4Address(TARGET_IP)

    scalar = RouterHarness(seed=seed, fastpath=True)
    record = scalar.establish_flow(vlan=2, sport=40000)
    inmate_ip = record.orig.orig_ip
    nat_global = record.nat_global or inmate_ip
    scalar.drain()
    for index in range(rows):
        segment = TCPSegment(40000, TARGET_PORT, 2000 + index * 512,
                             9001, ACK | PSH, payload=payload)
        frame = EthernetFrame(scalar.mac, MacAddress("02:00:00:00:00:01"),
                              IPv4Packet(inmate_ip, target, segment),
                              vlan=2)
        scalar.router.inmate_frame(frame, 2)
    for index in range(rows):
        scalar.router.upstream_packet(IPv4Packet(
            target, nat_global,
            TCPSegment(TARGET_PORT, 40000, 9500 + index * 512, 2001,
                       ACK | PSH, payload=payload)))
    reference = {
        EMIT_UPSTREAM: [p.to_bytes() for p in scalar.upstream],
        EMIT_VLAN: [p.to_bytes() for p in scalar.to_vlan],
    }

    batched = RouterHarness(seed=seed, fastpath=True)
    batched.establish_flow(vlan=2, sport=40000)
    batch = WireBatch()
    for index in range(rows):
        batch.append_tcp(inmate_ip.value, 40000, target.value,
                         TARGET_PORT, 2000 + index * 512, 9001,
                         ACK | PSH, 65535, payload, vlan=2)
    for index in range(rows):
        batch.append_tcp(target.value, TARGET_PORT, nat_global.value,
                         40000, 9500 + index * 512, 2001, ACK | PSH,
                         65535, payload, origin=ORIGIN_UPSTREAM)
    out = BatchOutput()
    batched.router.ingest_batch(batch, out)
    channels = out.by_channel()

    return {
        "rows": 2 * rows,
        "wires_match": (
            channels.get(EMIT_UPSTREAM, []) == reference[EMIT_UPSTREAM]
            and channels.get(EMIT_VLAN, []) == reference[EMIT_VLAN]),
        "counters_match": (dict(scalar.router.counters)
                           == dict(batched.router.counters)),
        "stats_match": (scalar.router.flowtable.stats()
                        == batched.router.flowtable.stats()),
    }


def bench_flow_setup(flows: int, seed: int = 7) -> dict:
    """Full shim round-trips per second (the slow path, paid once per
    flow)."""
    harness = RouterHarness(seed=seed, fastpath=True)
    started = perf_counter()
    for index in range(flows):
        harness.establish_flow(vlan=2 + (index % 64), sport=30000 + index)
    elapsed = perf_counter() - started
    return {
        "flows": flows,
        "seconds": round(elapsed, 4),
        "flows_per_sec": round(flows / elapsed) if elapsed else 0,
    }


# ----------------------------------------------------------------------
# End-to-end farm workload
# ----------------------------------------------------------------------
def streaming_image(rounds: int, chunk: int = 512):
    """An inmate that opens one connection and ping-pongs ``rounds``
    chunks over it — post-verdict forwarding dominates."""

    def image(host):
        def configured(h):
            def start():
                conn = h.tcp.connect(IPv4Address(TARGET_IP), TARGET_PORT)
                state = {"rounds": 0}

                def on_data(c, data):
                    state["rounds"] += 1
                    if state["rounds"] >= rounds:
                        c.close()
                    else:
                        c.send(b"x" * chunk)

                conn.on_established = lambda c: c.send(b"x" * chunk)
                conn.on_data = on_data

            h.sim.schedule(1.0, start, label="stream-start")

        DhcpClient(host, on_configured=configured).start()

    return image


def _echo_server(host) -> None:
    def on_accept(conn):
        conn.on_data = lambda c, data: c.send(data)
        conn.on_remote_close = lambda c: c.close()

    host.tcp.listen(TARGET_PORT, on_accept)


def run_farm(seed: int, inmates: int, rounds: int, duration: float,
             fastpath: bool) -> dict:
    farm = Farm(FarmConfig(seed=seed, telemetry=True))
    _echo_server(farm.add_external_host("echo", TARGET_IP))
    sub = farm.create_subfarm("bench")
    sub.set_default_policy(AllowAll())
    sub.router.fastpath_enabled = fastpath
    for _ in range(inmates):
        sub.create_inmate(image_factory=streaming_image(rounds))
    started = perf_counter()
    farm.run(until=duration)
    elapsed = perf_counter() - started
    counters = dict(sub.router.counters)
    digest = hashlib.sha256()
    digest.update(json.dumps(counters, sort_keys=True).encode())
    for entry in sub.router.flow_log:
        digest.update(
            f"{entry.timestamp:.9f}|{entry.vlan}|{entry.verdict}"
            f"|{entry.orig}|{entry.policy}".encode())
    for rec in farm.gateway.upstream_trace.records:
        digest.update(rec.frame.to_bytes())
    # Telemetry snapshots only keep deterministic instruments, so the
    # whole metric surface folds into the digest too — except the
    # flowtable.* instruments, which exist only when the fast path is
    # enabled and would trivially break the on/off parity digest while
    # saying nothing about wire behavior.
    snapshot = farm.telemetry_snapshot(include_traces=False)
    for family in ("counters", "gauges"):
        snapshot[family] = {k: v for k, v in snapshot[family].items()
                            if not k.startswith("flowtable.")}
    digest.update(json.dumps(snapshot, sort_keys=True).encode())
    return {
        "fastpath": fastpath,
        "events": farm.sim.events_processed,
        "packets_relayed": counters["packets_relayed"],
        "flows_created": counters["flows_created"],
        "virtual_seconds": farm.sim.now,
        "seconds": round(elapsed, 4),
        "events_per_sec": round(farm.sim.events_processed / elapsed)
        if elapsed else 0,
        "packets_per_sec": round(counters["packets_relayed"] / elapsed)
        if elapsed else 0,
        "digest": digest.hexdigest(),
    }


def run_farm_flow_digest(seed: int, inmates: int, rounds: int,
                         duration: float,
                         batch_window=None) -> dict:
    """``run_farm`` with a configurable trunk batch window, digesting
    only wire-level evidence (counters, flow log, upstream trace
    bytes).  Telemetry stays out: a positive window legitimately
    shifts event-stride gauge samples without changing any wire
    behavior, and this digest must isolate the latter."""
    farm = Farm(FarmConfig(seed=seed, telemetry=True,
                           batch_window=batch_window))
    _echo_server(farm.add_external_host("echo", TARGET_IP))
    sub = farm.create_subfarm("bench")
    sub.set_default_policy(AllowAll())
    sub.router.fastpath_enabled = True
    for _ in range(inmates):
        sub.create_inmate(image_factory=streaming_image(rounds))
    farm.run(until=duration)
    counters = dict(sub.router.counters)
    digest = hashlib.sha256()
    digest.update(json.dumps(counters, sort_keys=True).encode())
    for entry in sub.router.flow_log:
        digest.update(
            f"{entry.timestamp:.9f}|{entry.vlan}|{entry.verdict}"
            f"|{entry.orig}|{entry.policy}".encode())
    for rec in farm.gateway.upstream_trace.records:
        digest.update(rec.frame.to_bytes())
    return {
        "batch_window": batch_window,
        "digest": digest.hexdigest(),
        "counters": counters,
        "flowtable": sub.router.flowtable.stats(),
    }


def run_batch_determinism(seed: int, inmates: int, rounds: int,
                          duration: float,
                          window: float = 0.005) -> dict:
    """Batch-vs-scalar farm gate.  A zero window coalesces only
    naturally coincident frames (timing untouched), so its flow digest
    must be byte-identical to the unbatched farm; a positive window
    quantizes delivery times (timestamps legitimately move) but every
    router counter and flow-table stat must still match."""
    base = run_farm_flow_digest(seed, inmates, rounds, duration)
    zero = run_farm_flow_digest(seed, inmates, rounds, duration,
                                batch_window=0.0)
    windowed = run_farm_flow_digest(seed, inmates, rounds, duration,
                                    batch_window=window)
    return {
        "digest": base["digest"],
        "window": window,
        "coincident_parity_match": zero["digest"] == base["digest"],
        "window_counters_match": (
            windowed["counters"] == base["counters"]
            and windowed["flowtable"] == base["flowtable"]),
    }


# ----------------------------------------------------------------------
def run_determinism(seed: int, inmates: int, rounds: int,
                    duration: float) -> dict:
    """Same-seed replay and fastpath-parity digests."""
    first = run_farm(seed, inmates, rounds, duration, fastpath=True)
    second = run_farm(seed, inmates, rounds, duration, fastpath=True)
    slow = run_farm(seed, inmates, rounds, duration, fastpath=False)
    return {
        "digest": first["digest"],
        "same_seed_match": first["digest"] == second["digest"],
        "fastpath_parity_match": first["digest"] == slow["digest"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="determinism smoke only (CI); no JSON output")
    parser.add_argument("--packets", type=int, default=200_000,
                        help="data packets for the forwarding benchmark")
    parser.add_argument("--flows", type=int, default=2_000,
                        help="flows for the setup benchmark")
    parser.add_argument("--inmates", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=400,
                        help="chunks each inmate streams end-to-end")
    parser.add_argument("--duration", type=float, default=300.0)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--output", default=os.path.join(
        REPO_ROOT, "BENCH_hotpath.json"))
    args = parser.parse_args(argv)

    if args.quick:
        determinism = run_determinism(args.seed, inmates=3, rounds=40,
                                      duration=120.0)
        parity = batch_parity(seed=args.seed)
        batch_det = run_batch_determinism(args.seed, inmates=3,
                                          rounds=40, duration=120.0)
        fwd_fast = bench_forwarding(True, 5_000, seed=args.seed)
        print(json.dumps({"determinism": determinism,
                          "batch_parity": parity,
                          "batch_determinism": batch_det,
                          "forward_smoke_pps": fwd_fast["packets_per_sec"]},
                         indent=2))
        if not determinism["same_seed_match"]:
            print("FAIL: same-seed replay digests differ", file=sys.stderr)
            return 1
        if not determinism["fastpath_parity_match"]:
            print("FAIL: fastpath on/off digests differ", file=sys.stderr)
            return 1
        if not (parity["wires_match"] and parity["counters_match"]
                and parity["stats_match"]):
            print("FAIL: batched datapath diverges from scalar "
                  f"({parity})", file=sys.stderr)
            return 1
        if not batch_det["coincident_parity_match"]:
            print("FAIL: batch_window=0 farm digest differs from "
                  "unbatched", file=sys.stderr)
            return 1
        if not batch_det["window_counters_match"]:
            print("FAIL: windowed farm counters differ from unbatched",
                  file=sys.stderr)
            return 1
        print("determinism OK")
        return 0

    before_fwd = bench_forwarding(False, args.packets, seed=args.seed)
    after_fwd = bench_forwarding(True, args.packets, seed=args.seed)
    batch = bench_batch(args.packets, seed=args.seed)
    parity = batch_parity(seed=args.seed)
    batch_det = run_batch_determinism(args.seed, inmates=3, rounds=40,
                                      duration=120.0)
    setup = bench_flow_setup(args.flows, seed=args.seed)
    before_e2e = run_farm(args.seed, args.inmates, args.rounds,
                          args.duration, fastpath=False)
    after_e2e = run_farm(args.seed, args.inmates, args.rounds,
                         args.duration, fastpath=True)
    determinism = run_determinism(args.seed, inmates=3, rounds=40,
                                  duration=120.0)

    def speedup(before, after, key):
        return round(after[key] / before[key], 3) if before[key] else 0.0

    result = {
        "benchmark": "bench_hotpath",
        "config": {
            "seed": args.seed, "packets": args.packets,
            "flows": args.flows, "inmates": args.inmates,
            "rounds": args.rounds, "duration": args.duration,
            "python": sys.version.split()[0],
        },
        "forwarding": {
            "before": before_fwd,
            "after": after_fwd,
            "speedup": speedup(before_fwd, after_fwd, "packets_per_sec"),
        },
        "batch": {
            "datapath": batch,
            "speedup_vs_fastpath": round(
                batch["ingest_packets_per_sec"]
                / after_fwd["packets_per_sec"], 3)
            if after_fwd["packets_per_sec"] else 0.0,
            "parity": parity,
            "determinism": batch_det,
        },
        "flow_setup": setup,
        "end_to_end": {
            "before": {k: v for k, v in before_e2e.items() if k != "digest"},
            "after": {k: v for k, v in after_e2e.items() if k != "digest"},
            "events_per_sec_speedup": speedup(before_e2e, after_e2e,
                                              "events_per_sec"),
        },
        "determinism": determinism,
    }
    print(json.dumps(result, indent=2))
    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.output}")
    ok = (determinism["same_seed_match"]
          and determinism["fastpath_parity_match"]
          and parity["wires_match"] and parity["counters_match"]
          and parity["stats_match"]
          and batch_det["coincident_parity_match"]
          and batch_det["window_counters_match"])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
