"""§3: the iterative default-deny policy development methodology."""

from __future__ import annotations

from conftest import once

from repro.experiments.policy_iteration import develop_policy

FAMILIES = ("grum", "rustock", "megad")


def _run_all():
    return {family: develop_policy(family, duration=400.0)
            for family in FAMILIES}


def render(histories) -> str:
    lines = [
        "Iterative policy development from default-deny (§3)",
        "",
    ]
    for family, history in histories.items():
        lines.append(f"{family}:")
        for outcome in history:
            rule = outcome.new_rule
            lines.append(
                f"    iteration {outcome.iteration}: "
                f"rules={len(outcome.rules)} "
                f"cnc={outcome.cnc_fetches} "
                f"harvest={outcome.spam_harvested} "
                f"harm={outcome.harm_outside} "
                + (f"-> whitelist port {rule.port} shape {rule.token!r}"
                   if rule else "-> converged" if outcome.fully_alive
                   else "-> nothing left to learn")
            )
        lines.append("")
    lines.append(
        "Every iteration ran with zero harm escaping — developing the "
        "policy\nIS the analysis, and it is safe from the first run."
    )
    return "\n".join(lines)


def test_policy_iteration(benchmark, emit):
    histories = once(benchmark, _run_all)
    emit("policy_iteration", render(histories))
    for family, history in histories.items():
        assert history[-1].fully_alive, family
        assert all(h.harm_outside == 0 for h in history), family
    assert len(histories["grum"]) == 2
    assert len(histories["rustock"]) == 3  # two C&C shapes to learn
    assert len(histories["megad"]) == 2
