"""§7.1 "Exploratory containment": the error-code decoding study."""

from __future__ import annotations

from conftest import once

from repro.experiments.error_codes import (
    CONDITION_TO_STAGE,
    FIRMWARE_ERROR_TABLE,
    recovered_table,
    run_error_code_study,
)


def render(study) -> str:
    lines = [
        "Exploratory containment: decoding delivery-report error codes "
        "(§7.1)",
        "",
        f"{'INJECTED CONDITION':<20} {'REPORTS':>7} {'OBSERVED CODE':>13} "
        f"{'FIRMWARE SAYS':>13}",
        "-" * 60,
    ]
    for condition, codes in study.observed.items():
        stage = CONDITION_TO_STAGE[condition]
        lines.append(
            f"{condition:<20} {len(codes):>7} "
            f"{study.recovered[condition]!s:>13} "
            f"{FIRMWARE_ERROR_TABLE[stage]:>13}"
        )
    lines.append("-" * 60)
    match = recovered_table(study) == FIRMWARE_ERROR_TABLE
    lines.append(
        f"Recovered table matches the firmware table: {match} — live "
        "experimentation\nalone decoded every code, with zero messages "
        "escaping during the study."
    )
    return "\n".join(lines)


def test_error_code_study(benchmark, emit):
    study = once(benchmark, run_error_code_study, duration=250.0)
    emit("error_codes", render(study))
    assert recovered_table(study) == FIRMWARE_ERROR_TABLE
