"""Journal overhead gate: observing must never perturb, and barely cost.

Two properties, both asserted (``make obs-quick``):

1. **Digest identity.**  The flight recorder only *observes*: it draws
   no RNG and schedules nothing, so a farm run's determinism digest
   (counters + flow log + upstream trace + telemetry snapshot — the
   exact recipe of ``bench_hotpath.run_farm``) must be byte-identical
   with the journal off, with it on, and to the digest tracked in
   ``BENCH_hotpath.json``.
2. **Forwarding overhead.**  Journal recording happens on decision
   events (flow setup, verdicts, failover), never per packet, so the
   established-flow fast path with a live journal attached must stay
   within ``MAX_FORWARDING_SLOWDOWN`` (10%) of the journal-off rate.

The journal's own digest is additionally asserted stable across two
same-seed runs — the reproducibility that makes ``python -m repro.obs
why`` output diffable evidence (docs/OBSERVABILITY.md).

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py          # writes BENCH_obs.json
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick  # CI gate, no JSON output
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

import bench_hotpath
from bench_hotpath import RouterHarness, run_farm

from repro.core.policy import AllowAll
from repro.farm import Farm, FarmConfig
from repro.obs.journal import Journal

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HOTPATH_NAME = "BENCH_hotpath.json"

#: Farm-run parameters — MUST match bench_hotpath.run_determinism so
#: the journal-off digest can be compared against the tracked one.
SEED = 11
INMATES = 3
ROUNDS = 40
DURATION = 120.0

MAX_FORWARDING_SLOWDOWN = 0.10


def run_farm_journal(seed: int, inmates: int, rounds: int,
                     duration: float) -> dict:
    """``bench_hotpath.run_farm`` with the journal attached — same
    workload, same digest recipe, so any digest difference is the
    journal perturbing the run."""
    import hashlib

    farm = Farm(FarmConfig(seed=seed, telemetry=True, journal=True))
    bench_hotpath._echo_server(
        farm.add_external_host("echo", bench_hotpath.TARGET_IP))
    sub = farm.create_subfarm("bench")
    sub.set_default_policy(AllowAll())
    sub.router.fastpath_enabled = True
    for _ in range(inmates):
        sub.create_inmate(
            image_factory=bench_hotpath.streaming_image(rounds))
    started = perf_counter()
    farm.run(until=duration)
    elapsed = perf_counter() - started
    counters = dict(sub.router.counters)
    digest = hashlib.sha256()
    digest.update(json.dumps(counters, sort_keys=True).encode())
    for entry in sub.router.flow_log:
        digest.update(
            f"{entry.timestamp:.9f}|{entry.vlan}|{entry.verdict}"
            f"|{entry.orig}|{entry.policy}".encode())
    for rec in farm.gateway.upstream_trace.records:
        digest.update(rec.frame.to_bytes())
    # flowtable.* instruments are excluded to match the recipe in
    # bench_hotpath.run_farm (they exist only when the fast path is on,
    # so the tracked on/off parity digest must not see them).
    snapshot = farm.telemetry_snapshot(include_traces=False)
    for family in ("counters", "gauges"):
        snapshot[family] = {k: v for k, v in snapshot[family].items()
                            if not k.startswith("flowtable.")}
    digest.update(json.dumps(snapshot, sort_keys=True).encode())
    return {
        "seconds": round(elapsed, 4),
        "digest": digest.hexdigest(),
        "journal_events": farm.journal.recorded,
        "journal_digest": farm.journal.digest(),
    }


def forwarding_rate(journal_on: bool, packets: int, seed: int = 7,
                    repeats: int = 3) -> dict:
    """Fast-path packets/sec with and without a live journal.

    Same harness and pump as ``bench_hotpath.bench_forwarding``; the
    journal is attached after construction (the micro-harness builds
    its own simulator), before the flow is established so setup-time
    decisions are recorded — steady-state forwarding must not be.
    """
    from repro.net.addresses import IPv4Address, MacAddress
    from repro.net.packet import ACK, PSH, EthernetFrame, IPv4Packet, \
        TCPSegment

    harness = RouterHarness(seed=seed, fastpath=True)
    if journal_on:
        journal = Journal(clock=lambda: harness.sim.now)
        harness.sim.journal = journal
        harness.router.journal = journal
    record = harness.establish_flow(vlan=2, sport=40000)
    assert record.phase.value == "enforced", record.phase
    inmate_ip = record.orig.orig_ip
    payload = b"x" * 512
    c2d = TCPSegment(40000, bench_hotpath.TARGET_PORT, 2000, 9001,
                     ACK | PSH, payload=payload)
    frame = EthernetFrame(
        harness.mac, MacAddress("02:00:00:00:00:01"),
        IPv4Packet(inmate_ip, IPv4Address(bench_hotpath.TARGET_IP), c2d),
        vlan=2)
    d2c = IPv4Packet(
        IPv4Address(bench_hotpath.TARGET_IP),
        record.nat_global or inmate_ip,
        TCPSegment(bench_hotpath.TARGET_PORT, 40000, 9500, 2001,
                   ACK | PSH, payload=payload))
    router = harness.router
    half = packets // 2
    best = float("inf")
    for _ in range(repeats):
        harness.drain()
        started = perf_counter()
        for _ in range(half):
            router.inmate_frame(frame, 2)
        for _ in range(half):
            router.upstream_packet(d2c)
        best = min(best, perf_counter() - started)
    return {
        "journal": journal_on,
        "packets": 2 * half,
        "seconds": round(best, 4),
        "packets_per_sec": round(2 * half / best) if best else 0,
        "journal_events": (harness.sim.journal.recorded
                           if journal_on else 0),
    }


def run_gate(packets: int) -> dict:
    """All measurements + assertions; ``violations`` is empty when the
    journal is free of both perturbation and meaningful cost."""
    violations = []

    tracked_digest = None
    hotpath_path = os.path.join(REPO_ROOT, HOTPATH_NAME)
    if os.path.exists(hotpath_path):
        with open(hotpath_path) as handle:
            tracked_digest = json.load(handle).get(
                "determinism", {}).get("digest")

    off = run_farm(SEED, INMATES, ROUNDS, DURATION, fastpath=True)
    on = run_farm_journal(SEED, INMATES, ROUNDS, DURATION)
    replay = run_farm_journal(SEED, INMATES, ROUNDS, DURATION)

    if tracked_digest and off["digest"] != tracked_digest:
        violations.append(
            f"journal-off farm digest differs from the one tracked in "
            f"{HOTPATH_NAME} ({off['digest']} != {tracked_digest})")
    if on["digest"] != off["digest"]:
        violations.append(
            "journal-on farm digest differs from journal-off — the "
            "journal perturbed the run "
            f"({on['digest']} != {off['digest']})")
    if on["journal_digest"] != replay["journal_digest"]:
        violations.append(
            "journal digest drifts across identical runs — event "
            "ordering is not seed-stable")
    if not on["journal_events"]:
        violations.append("journal-on farm run recorded zero events — "
                          "the gate is measuring nothing")

    fwd_off = forwarding_rate(False, packets)
    fwd_on = forwarding_rate(True, packets)
    off_pps = fwd_off["packets_per_sec"]
    on_pps = fwd_on["packets_per_sec"]
    slowdown = (off_pps - on_pps) / off_pps if off_pps else 1.0
    if slowdown > MAX_FORWARDING_SLOWDOWN:
        violations.append(
            f"journal-on forwarding is {slowdown:.1%} slower than "
            f"journal-off (limit {MAX_FORWARDING_SLOWDOWN:.0%}): "
            f"{on_pps} vs {off_pps} pps")

    return {
        "benchmark": "bench_obs_overhead",
        "config": {
            "seed": SEED, "inmates": INMATES, "rounds": ROUNDS,
            "duration": DURATION, "packets": packets,
            "max_forwarding_slowdown": MAX_FORWARDING_SLOWDOWN,
            "python": sys.version.split()[0],
        },
        "digest_identity": {
            "tracked_hotpath": tracked_digest,
            "journal_off": off["digest"],
            "journal_on": on["digest"],
            "match": on["digest"] == off["digest"] == (
                tracked_digest or off["digest"]),
        },
        "journal": {
            "events": on["journal_events"],
            "digest": on["journal_digest"],
            "replay_match": on["journal_digest"] ==
            replay["journal_digest"],
        },
        "forwarding": {
            "off": fwd_off,
            "on": fwd_on,
            "slowdown": round(slowdown, 4),
        },
        "violations": violations,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI gate only; no JSON file written")
    parser.add_argument("--packets", type=int, default=None,
                        help="fast-path pump size (default 200000, "
                             "20000 with --quick)")
    parser.add_argument("--output", default=os.path.join(
        REPO_ROOT, "BENCH_obs.json"))
    args = parser.parse_args(argv)

    packets = args.packets if args.packets is not None \
        else (20_000 if args.quick else 200_000)
    result = run_gate(packets)
    print(json.dumps(result, indent=2))
    if not args.quick:
        with open(args.output, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.output}")
    if result["violations"]:
        for violation in result["violations"]:
            print(f"FAIL: {violation}", file=sys.stderr)
        return 1
    print("journal overhead gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
