"""Telemetry overhead: the disabled path must cost (nearly) nothing.

Every instrumented call site in the simulator, gateway, and services
either bumps a pre-bound no-op cell or branches on
``telemetry.enabled``.  There is no uninstrumented build to diff
against, so the disabled overhead is measured analytically:

1. run a multi-subfarm flow workload with telemetry ENABLED and read
   the registry back to count exactly how many instrument touches the
   workload performs (counter incs + histogram observes + queue-depth
   gauge sets);
2. microbenchmark the cost of one no-op touch (a bound
   ``NULL_INSTRUMENT`` call — what each of those sites degrades to
   when telemetry is off);
3. time the same workload with telemetry DISABLED and assert
   ``touches x per_touch_cost`` is under 5% of that wall time.

The enabled/disabled wall-clock ratio is reported as context but not
asserted — single-run wall times are too noisy for a hard bound.
"""

from __future__ import annotations

import time

from conftest import once

from repro.core.policy import AllowAll
from repro.experiments.scalability import WEB_IP, _web_server, flowgen_image
from repro.farm import Farm, FarmConfig
from repro.obs.metrics import Counter, Histogram, NULL_INSTRUMENT

SUBFARMS = 2
INMATES_PER = 6
FLOW_INTERVAL = 2.0
DURATION = 120.0
MAX_DISABLED_OVERHEAD = 0.05
NOOP_CALLS = 200_000


def _build_farm(telemetry: bool) -> Farm:
    farm = Farm(FarmConfig(seed=11, telemetry=telemetry))
    web = farm.add_external_host("webserver", WEB_IP)
    _web_server(web)
    for index in range(SUBFARMS):
        sub = farm.create_subfarm(f"sf{index}")
        sub.set_default_policy(AllowAll())
        for _ in range(INMATES_PER):
            sub.create_inmate(image_factory=flowgen_image(FLOW_INTERVAL))
    return farm


def _timed_run(telemetry: bool):
    farm = _build_farm(telemetry)
    start = time.perf_counter()
    farm.run(until=DURATION)
    return farm, time.perf_counter() - start


def _count_touches(farm: Farm) -> int:
    """Replay the registry into a touch count.

    Each counter increment and histogram observation is one call-site
    touch; the run loop additionally sets the queue-depth gauge once
    per schedule and once per fire.
    """
    registry = farm.telemetry.registry
    touches = 0
    for metric in registry.metrics():
        if isinstance(metric, Counter):
            touches += int(metric.total())
        elif isinstance(metric, Histogram):
            touches += sum(cell.count for cell in metric.cells().values())
    scheduled = registry.get("sim.events.scheduled")
    fired = registry.get("sim.events.fired")
    touches += int(scheduled.total()) if scheduled is not None else 0
    touches += int(fired.total()) if fired is not None else 0
    return touches


def _noop_cost() -> float:
    """Median per-call cost of a bound no-op instrument, in seconds."""
    cell = NULL_INSTRUMENT.bind(subfarm="x")
    samples = []
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(NOOP_CALLS):
            cell.inc()
        samples.append((time.perf_counter() - start) / NOOP_CALLS)
    samples.sort()
    return samples[len(samples) // 2]


def _run():
    enabled_farm, enabled_wall = _timed_run(telemetry=True)
    touches = _count_touches(enabled_farm)
    # Disabled runs are the production configuration: take the best of
    # three to shed scheduler noise.
    disabled_walls = [_timed_run(telemetry=False)[1] for _ in range(3)]
    disabled_wall = min(disabled_walls)
    per_touch = _noop_cost()
    overhead = touches * per_touch / disabled_wall
    return {
        "touches": touches,
        "per_touch_ns": per_touch * 1e9,
        "disabled_wall": disabled_wall,
        "enabled_wall": enabled_wall,
        "overhead": overhead,
        "events": enabled_farm.sim.events_processed,
    }


def render(r: dict) -> str:
    return "\n".join([
        "Telemetry overhead (disabled path)",
        "",
        f"workload             : {SUBFARMS} subfarms x {INMATES_PER} "
        f"inmates, {DURATION:.0f} simulated seconds "
        f"({r['events']} events)",
        f"instrument touches   : {r['touches']}",
        f"no-op cost per touch : {r['per_touch_ns']:.1f} ns",
        f"disabled wall time   : {r['disabled_wall'] * 1000:.1f} ms",
        f"enabled wall time    : {r['enabled_wall'] * 1000:.1f} ms "
        f"({r['enabled_wall'] / r['disabled_wall']:.2f}x, informational)",
        "",
        f"disabled overhead    : {r['overhead']:.2%} of wall time "
        f"(bound: {MAX_DISABLED_OVERHEAD:.0%})",
    ])


def test_disabled_telemetry_overhead(benchmark, emit):
    result = once(benchmark, _run)
    emit("telemetry_overhead", render(result))

    # The workload actually exercised the instrumentation.
    assert result["touches"] > 1000
    # The headline guarantee: when telemetry is off, the residual no-op
    # calls cost under 5% of the run.
    assert result["overhead"] < MAX_DISABLED_OVERHEAD, (
        f"disabled telemetry overhead {result['overhead']:.2%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%}")
