"""§6.4: raw-iron reimaging cycle timings."""

from __future__ import annotations

from conftest import once

from repro.experiments.rawiron_cycle import run_comparison


def render(comparison) -> str:
    lines = [
        "Raw iron reimaging (§6.4)",
        "",
        f"{'STRATEGY':<16} {'PER-MACHINE CYCLE':>17} "
        f"{'POOL TURNAROUND (4 MACHINES)':>28}",
        "-" * 64,
    ]
    for result in comparison.values():
        lines.append(
            f"{result.strategy:<16} {result.mean_cycle:>15.0f}s "
            f"{result.pool_turnaround:>27.0f}s"
        )
    lines.append("-" * 64)
    lines.append(
        'Paper: network boot is "around 6 minutes per reimaging cycle"; '
        'the hidden-\npartition restore is "slightly slower (around 10 '
        'minutes) but supports\nefficient reimaging of all raw-iron '
        'systems simultaneously".'
    )
    return "\n".join(lines)


def test_rawiron_cycles(benchmark, emit):
    comparison = once(benchmark, run_comparison, machines=4)
    emit("rawiron", render(comparison))
    network = comparison["network-boot"]
    local = comparison["local-partition"]
    assert 300 <= network.mean_cycle <= 420
    assert 500 <= local.mean_cycle <= 700
    assert local.pool_turnaround < network.pool_turnaround
