"""Figure 2: the six flow-manipulation modes."""

from __future__ import annotations

from conftest import once

from repro.experiments.flow_modes import observe_all_modes


def render(observations) -> str:
    lines = [
        "Figure 2 — flow manipulation modes (flows initiated by an inmate)",
        "",
        f"{'MODE':<12} {'REAL TARGET':>11} {'ALTERNATE':>9} {'SINK':>5} "
        f"{'CLIENT OUTCOME':<28}",
        "-" * 70,
    ]
    for mode, obs in observations.items():
        if obs.client_reset:
            outcome = "connection reset (killed)"
        elif obs.client_saw_response is not None:
            outcome = f"response {obs.client_saw_response!r}"
        else:
            outcome = "silence (idles)"
        lines.append(
            f"{mode:<12} {'yes' if obs.reached_real_target else 'no':>11} "
            f"{'yes' if obs.reached_alternate else 'no':>9} "
            f"{'yes' if obs.reached_sink else 'no':>5} {outcome:<28}"
        )
    return "\n".join(lines)


def test_fig2_modes(benchmark, emit):
    observations = once(benchmark, observe_all_modes)
    emit("fig2_modes", render(observations))

    assert observations["forward"].reached_real_target
    assert observations["forward"].client_saw_response == b"REAL"

    assert observations["rate-limit"].reached_real_target
    assert observations["rate-limit"].client_saw_response == b"REAL"
    # A 4-byte response fits the shaper's burst; shaping-delay effects
    # are covered by tests/test_containment_end_to_end.py::TestLimit.
    assert (observations["rate-limit"].completion_time
            >= observations["forward"].completion_time)

    assert not observations["drop"].reached_real_target
    assert observations["drop"].client_reset

    assert observations["redirect"].reached_alternate
    assert not observations["redirect"].reached_real_target
    assert observations["redirect"].client_saw_response == b"ALTERNATE"

    assert observations["reflect"].reached_sink
    assert not observations["reflect"].reached_real_target
    assert observations["reflect"].client_saw_response is None
    assert not observations["reflect"].client_reset

    assert observations["rewrite"].reached_real_target
    assert observations["rewrite"].client_saw_response == b"FAKE"
