"""Figure 1: the overall architecture, constructed and verified."""

from __future__ import annotations

from conftest import once

from repro.core.policy import DefaultDeny
from repro.farm import Farm, FarmConfig
from repro.inmates.images import idle_image


def _build():
    farm = Farm(FarmConfig(seed=1))
    subs = [farm.create_subfarm(f"subfarm-{i}") for i in range(3)]
    for sub in subs:
        sub.add_catchall_sink()
        sub.set_default_policy(DefaultDeny())
        for _ in range(4):
            sub.create_inmate(image_factory=idle_image())
    farm.run(until=90)
    return farm, subs


def render(farm, subs) -> str:
    lines = [
        "Figure 1 — overall architecture",
        "",
        "Gateway between outside network and internal machinery:",
        f"    upstream networks : "
        f"{[str(n) for n in farm.config.global_networks]}",
        f"    control network   : {farm.config.control_network}",
        f"    inmate trunk      : 802.1Q, "
        f"{sum(len(s.router.vlan_ids) for s in subs)} inmate VLANs",
        f"    management network: controller at {farm.controller_ip}",
        "",
        "Subfarms (inmate network):",
    ]
    for sub in subs:
        bindings = sub.nat.bindings()
        lines.append(
            f"    {sub.name}: vlans={sorted(sub.router.vlan_ids)} "
            f"cs={sub.cs_ip} dns={sub.dns_ip} "
            f"leases={len(bindings)}"
        )
    return "\n".join(lines)


def test_fig1_architecture(benchmark, emit):
    farm, subs = once(benchmark, _build)
    emit("fig1_architecture", render(farm, subs))

    # Every inmate came up behind NAT with farm services reachable.
    for sub in subs:
        for vlan, inmate in sub.inmates.items():
            assert inmate.host is not None and inmate.host.ip is not None
            assert inmate.host.ip.is_rfc1918()
            assert sub.nat.global_for(vlan) is not None
    # VLAN ranges are disjoint across the whole farm.
    all_vlans = [v for sub in subs for v in sub.router.vlan_ids]
    assert len(all_vlans) == len(set(all_vlans))
