"""Table 1: self-propagating worms caught by GQ in early 2006.

Regenerates the table: for every one of the 66 rows, run the worm
capture scenario and report events, connections per infection, and
measured incubation next to the paper's numbers.  Absolute event
counts depend on how much wild traffic arrives (workload-relative);
the reproduced *shape* is the family roster, the per-family
connection counts (exact), and the incubation ordering including the
bold >3-minute classes.
"""

from __future__ import annotations

import os

from conftest import once

from repro.experiments.worm_capture import run_worm_capture
from repro.malware.worm_table import (
    SLOW_INCUBATION_THRESHOLD,
    TABLE_1,
    distinct_families,
)

# Full table by default; GQ_BENCH_QUICK=1 runs a representative dozen.
QUICK_ROWS = [0, 5, 8, 9, 17, 20, 28, 33, 49, 51, 63, 65]


def _selected_rows():
    if os.environ.get("GQ_BENCH_QUICK"):
        return [TABLE_1[i] for i in QUICK_ROWS]
    return list(TABLE_1)


def _run_table(rows):
    results = []
    for index, row in enumerate(rows):
        results.append(run_worm_capture(row, inmates=4, duration=3600.0,
                                        seed=100 + index))
    return results


def render(results) -> str:
    lines = [
        "Table 1 — worms captured (paper vs measured)",
        "",
        f"{'EXECUTABLE':<18} {'WORM NAME':<22} {'EVENTS':>6} "
        f"{'CONNS':>5}{'':2}{'PAPER INC(S)':>12} {'MEASURED(S)':>12}  NOTE",
        "-" * 92,
    ]
    slow_measured = 0
    for result in results:
        row = result.row
        measured = result.mean_incubation
        conns = result.conns_per_infection
        bold = "  <-- >3min" if row.incubation > SLOW_INCUBATION_THRESHOLD \
            else ""
        if measured is not None and measured > SLOW_INCUBATION_THRESHOLD:
            slow_measured += 1
        measured_text = f"{measured:12.1f}" if measured is not None \
            else f"{'n/a':>12}"
        lines.append(
            f"{row.executable:<18} {(row.label or '—'):<22} "
            f"{result.event_count:>6} {conns if conns else row.conns:>5}"
            f"{'':2}{row.incubation:>12.1f} {measured_text}{bold}"
        )
    families = distinct_families([r.row for r in results])
    lines.append("-" * 92)
    lines.append(
        f"{len(results)} infection classes; {len(families)} base families "
        f"(paper: 66 worms / 14 families); "
        f"{slow_measured} measured classes above 3 minutes"
    )
    return "\n".join(lines)


def test_table1_worm_capture(benchmark, emit):
    rows = _selected_rows()
    results = once(benchmark, _run_table, rows)
    emit("table1_worms", render(results))
    # Shape assertions: connection counts reproduce exactly, and
    # measured incubations track the paper within a factor of two.
    for result in results:
        if result.event_count >= 2:
            assert result.conns_per_infection == result.row.conns
        measured = result.mean_incubation
        if measured is not None:
            assert (result.row.incubation * 0.4 <= measured
                    <= result.row.incubation * 2.5 + 30.0)
