"""Figure 5: the REWRITE packet ladder through gateway and
containment server."""

from __future__ import annotations

from conftest import once

from repro.experiments.figure5 import run_figure5


def test_fig5_rewrite_ladder(benchmark, emit):
    result = once(benchmark, run_figure5)
    header = (
        "Figure 5 — TCP packet flow through gateway and containment "
        "server (REWRITE)\n"
        f"Request seen by the real target : GET {result.request_on_wire}  "
        "(inmate sent /bot.exe)\n"
        f"Response seen by the inmate     : {result.response_to_inmate}  "
        "(target sent 200 OK)\n"
        f"Shims carried in sequence space : {result.shim_lengths} bytes\n"
    )
    emit("fig5_rewrite_ladder", header + "\n" + result.rendered())

    assert result.request_on_wire == "/cleanup.exe"
    assert result.response_to_inmate.startswith("404")
    assert result.seq_bump_observed
    assert result.shim_lengths[0] == 24       # request shim
    assert result.shim_lengths[1] >= 56       # response shim
