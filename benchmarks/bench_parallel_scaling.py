"""Parallel campaign scaling: sharded farm sweeps vs a serial run.

Measures the :mod:`repro.parallel` runner on an 8-shard seed sweep of
complete streaming-farm runs (the ``streaming_farm_shard`` reference
task), at 1, 2, and 4 workers, and asserts the determinism contract:
the merged campaign digest at every worker count is byte-identical to
the serial run of the same :class:`~repro.parallel.Campaign` spec.

Two sweeps are recorded (see docs/PARALLELISM.md for why both):

* ``campaign`` — the headline: each shard is a farm simulation plus a
  ``detonation_wait`` of real wall-clock time modelling the
  operational cost that dominates production campaigns (the paper's
  §6.3 multi-hour malware runs and §7.3 6-10 minute raw-iron reimage
  cycles are wall time during which the coordinating process only
  waits).  Parallelism overlaps those waits regardless of core count —
  this is the regime GQ's independent subfarms were designed for.
* ``cpu_bound`` — the same sweep with no wait: pure simulation CPU.
  Its speedup tracks the host's core count (recorded alongside), so a
  single-core CI box will honestly show ~1x here while multi-core
  hardware scales.

``--quick`` (CI smoke) runs a small sweep, asserts serial-vs-parallel
digest parity and merged-telemetry parity, checks that a killed worker
fails only its shard, and exits non-zero on any violation.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py          # writes BENCH_parallel.json
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.parallel import Campaign, ShardSpec, run_campaign

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FARM_TASK = "repro.parallel.tasks:streaming_farm_shard"


def build_sweep(shards: int, base_seed: int, detonation_wait: float,
                subfarms: int, inmates: int, rounds: int,
                duration: float) -> Campaign:
    return Campaign.seed_sweep(
        "parallel-scaling",
        FARM_TASK,
        params={
            "subfarms": subfarms,
            "inmates": inmates,
            "rounds": rounds,
            "duration": duration,
            "detonation_wait": detonation_wait,
        },
        count=shards,
        base_seed=base_seed,
    )


def run_sweep(campaign: Campaign, worker_counts) -> dict:
    """Run the same campaign at each worker count; verify digests."""
    runs = {}
    for workers in worker_counts:
        result = run_campaign(campaign, workers=workers)
        runs[workers] = result
    serial = runs[worker_counts[0]]
    assert serial.workers == 1, "first worker count must be the serial run"
    out = {
        "digest": serial.digest,
        "spec_digest": serial.spec_digest,
        "digest_parity": {},
        "workers": {},
    }
    for workers, result in runs.items():
        match = result.digest == serial.digest
        out["digest_parity"][str(workers)] = match
        out["workers"][str(workers)] = {
            "wall_seconds": round(result.wall_seconds, 3),
            "ok": result.ok,
            "failures": len(result.failures),
            "speedup": round(
                serial.wall_seconds / result.wall_seconds, 3)
            if result.wall_seconds else 0.0,
        }
    out["parity_ok"] = all(out["digest_parity"].values())
    out["telemetry_parity"] = all(
        runs[w].merged.get("telemetry")
        == serial.merged.get("telemetry")
        for w in worker_counts
    )
    return out


def run_crash_isolation(workers: int = 2) -> dict:
    """A campaign with one worker-killing shard must complete, with
    exactly that shard reporting a structured crash."""
    specs = [
        ShardSpec(0, "repro.parallel.tasks:noop_shard", {"seed": 1}),
        ShardSpec(1, "repro.parallel.tasks:crashing_shard", {"seed": 2}),
        ShardSpec(2, "repro.parallel.tasks:noop_shard", {"seed": 3}),
        ShardSpec(3, "repro.parallel.tasks:noop_shard", {"seed": 4}),
    ]
    result = run_campaign(Campaign("crash-isolation", specs),
                          workers=workers, chunk_size=1)
    failures = result.failures
    ok = (
        len(result.shard_results) == 4
        and len(failures) == 1
        and failures[0]["shard"] == 1
        and failures[0]["kind"] == "crash"
        and all(r.ok for r in result.shard_results if r.index != 1)
    )
    return {"ok": ok, "failures": failures}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="parity + crash-isolation smoke (CI); "
                             "no JSON file")
    parser.add_argument("--workers", type=int, default=2,
                        help="--quick parallel worker count "
                             "(1 exercises only the serial fallback)")
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--subfarms", type=int, default=2)
    parser.add_argument("--inmates", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=100)
    parser.add_argument("--duration", type=float, default=200.0)
    parser.add_argument("--detonation-wait", type=float, default=3.5,
                        help="modelled wall-clock detonation/reimage "
                             "time per shard (campaign sweep)")
    parser.add_argument("--output", default=os.path.join(
        REPO_ROOT, "BENCH_parallel.json"))
    args = parser.parse_args(argv)

    if args.quick:
        worker_counts = [1] if args.workers <= 1 \
            else [1, args.workers]
        campaign = build_sweep(4, args.seed, detonation_wait=0.0,
                               subfarms=2, inmates=2, rounds=40,
                               duration=90.0)
        sweep = run_sweep(campaign, worker_counts)
        crash = run_crash_isolation(workers=max(2, args.workers)) \
            if args.workers > 1 else {"ok": True, "skipped": "serial"}
        print(json.dumps({"sweep": sweep, "crash_isolation": crash},
                         indent=2))
        if not sweep["parity_ok"]:
            print("FAIL: serial vs parallel campaign digests differ",
                  file=sys.stderr)
            return 1
        if not sweep["telemetry_parity"]:
            print("FAIL: merged telemetry snapshots differ",
                  file=sys.stderr)
            return 1
        if not crash["ok"]:
            print("FAIL: crash isolation violated", file=sys.stderr)
            return 1
        print("parallel determinism OK")
        return 0

    worker_counts = [1, 2, 4]
    farm_params = dict(subfarms=args.subfarms, inmates=args.inmates,
                       rounds=args.rounds, duration=args.duration)

    campaign_sweep = run_sweep(
        build_sweep(args.shards, args.seed,
                    detonation_wait=args.detonation_wait, **farm_params),
        worker_counts)
    cpu_sweep = run_sweep(
        build_sweep(args.shards, args.seed, detonation_wait=0.0,
                    **farm_params),
        worker_counts)
    crash = run_crash_isolation()

    result = {
        "benchmark": "bench_parallel_scaling",
        "config": {
            "shards": args.shards,
            "seed": args.seed,
            "detonation_wait": args.detonation_wait,
            "host_cpus": os.cpu_count(),
            "sched_cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity") else None,
            "python": sys.version.split()[0],
            **farm_params,
        },
        "campaign": campaign_sweep,
        "cpu_bound": cpu_sweep,
        "crash_isolation": crash,
        "speedup_at_4_workers": campaign_sweep["workers"]["4"]["speedup"],
    }
    print(json.dumps(result, indent=2))
    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.output}")

    ok = (campaign_sweep["parity_ok"] and cpu_sweep["parity_ok"]
          and campaign_sweep["telemetry_parity"] and crash["ok"])
    if result["speedup_at_4_workers"] < 2.5:
        print(f"WARN: campaign speedup at 4 workers is "
              f"{result['speedup_at_4_workers']}x (< 2.5x target)",
              file=sys.stderr)
    if not ok:
        print("FAIL: determinism or isolation contract violated",
              file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
