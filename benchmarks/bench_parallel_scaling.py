"""Parallel campaign scaling: adaptive work stealing vs static chunks.

Measures the :mod:`repro.parallel` runner on seed sweeps of complete
streaming-farm runs (the ``streaming_farm_shard`` reference task) at
1, 2, 4, and 8 workers, and asserts the determinism contract: the
merged campaign digest at every worker count, under every scheduler
and transport, is byte-identical to the serial run of the same
:class:`~repro.parallel.Campaign` spec.

Recorded sweeps (see docs/PARALLELISM.md for why each exists):

* ``campaign`` — the headline: each shard is a farm simulation plus a
  ``detonation_wait`` of real wall-clock time modelling the
  operational cost that dominates production campaigns (the paper's
  §6.3 multi-hour malware runs and §7.3 6-10 minute raw-iron reimage
  cycles are wall time during which the coordinating process only
  waits).  Parallelism overlaps those waits regardless of core count.
* ``cpu_bound`` — the same sweep with no wait: pure simulation CPU.
  Its speedup tracks the host's core count (recorded alongside), so a
  single-core CI box honestly shows ~1x here.
* ``straggler`` — the scheduler comparison: a 16-shard sweep where two
  shards model slow detonations (a straggling subfarm).  Static
  contiguous chunks put both stragglers on one worker; work stealing
  drains around them.  The JSON records both curves — steal must be at
  least as fast at every worker count and strictly faster at 4+.
* ``socket`` — digest parity of the same campaign dispatched to a
  localhost ``python -m repro.parallel.worker`` agent over TCP.

``--quick`` (CI smoke) runs a small sweep, asserts serial-vs-parallel
digest parity and merged-telemetry parity, checks that a killed worker
fails only its shard, and exits non-zero on any violation.
``--quick-socket`` does the same over a localhost worker agent
(SocketTransport), including crash isolation across the socket.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py                # writes BENCH_parallel.json
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --quick        # CI smoke (local pool)
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --quick-socket # CI smoke (TCP agent)
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.parallel import Campaign, ShardSpec, run_campaign

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FARM_TASK = "repro.parallel.tasks:streaming_farm_shard"


def build_sweep(shards: int, base_seed: int, detonation_wait: float,
                subfarms: int, inmates: int, rounds: int,
                duration: float) -> Campaign:
    return Campaign.seed_sweep(
        "parallel-scaling",
        FARM_TASK,
        params={
            "subfarms": subfarms,
            "inmates": inmates,
            "rounds": rounds,
            "duration": duration,
            "detonation_wait": detonation_wait,
        },
        count=shards,
        base_seed=base_seed,
    )


def build_straggler_sweep(shards: int, base_seed: int,
                          straggler_wait: float, base_wait: float,
                          stragglers: int = 2) -> Campaign:
    """A sweep whose first ``stragglers`` shards model slow
    detonations — contiguous static chunks land them on one worker."""
    grid = [
        {
            "subfarms": 1, "inmates": 1, "rounds": 5, "duration": 30.0,
            "detonation_wait": straggler_wait if index < stragglers
            else base_wait,
        }
        for index in range(shards)
    ]
    return Campaign.config_sweep("straggler-sweep", FARM_TASK, grid,
                                 base_seed=base_seed)


def run_sweep(campaign: Campaign, worker_counts,
              scheduler: str = "steal") -> dict:
    """Run the same campaign at each worker count; verify digests."""
    runs = {}
    for workers in worker_counts:
        result = run_campaign(campaign, workers=workers,
                              scheduler=scheduler)
        runs[workers] = result
    serial = runs[worker_counts[0]]
    assert serial.workers == 1, "first worker count must be the serial run"
    out = {
        "digest": serial.digest,
        "spec_digest": serial.spec_digest,
        "scheduler": scheduler,
        "digest_parity": {},
        "workers": {},
    }
    for workers, result in runs.items():
        match = result.digest == serial.digest
        out["digest_parity"][str(workers)] = match
        out["workers"][str(workers)] = {
            "wall_seconds": round(result.wall_seconds, 3),
            "ok": result.ok,
            "failures": len(result.failures),
            "speedup": round(
                serial.wall_seconds / result.wall_seconds, 3)
            if result.wall_seconds else 0.0,
        }
    out["parity_ok"] = all(out["digest_parity"].values())
    out["telemetry_parity"] = all(
        runs[w].merged.get("telemetry")
        == serial.merged.get("telemetry")
        for w in worker_counts
    )
    return out


def run_straggler_comparison(campaign: Campaign, worker_counts) -> dict:
    """Static chunks vs work stealing over the straggler sweep.

    ``workers=1`` is the shared serial baseline (scheduler-independent
    by construction); every other count runs both schedulers.
    """
    serial = run_campaign(campaign, workers=1)
    out = {
        "digest": serial.digest,
        "serial_wall_seconds": round(serial.wall_seconds, 3),
        "workers": {},
    }
    parity = True
    never_worse = True
    strictly_better_at_4 = True
    for workers in worker_counts:
        if workers <= 1:
            wall = {"static": serial.wall_seconds,
                    "steal": serial.wall_seconds}
        else:
            wall = {}
            for mode in ("static", "steal"):
                result = run_campaign(campaign, workers=workers,
                                      scheduler=mode)
                parity = parity and result.digest == serial.digest \
                    and result.ok
                wall[mode] = result.wall_seconds
        entry = {
            mode: {
                "wall_seconds": round(wall[mode], 3),
                "speedup": round(serial.wall_seconds / wall[mode], 3)
                if wall[mode] else 0.0,
            }
            for mode in ("static", "steal")
        }
        entry["steal_vs_static"] = round(
            wall["static"] / wall["steal"], 3) if wall["steal"] else 0.0
        out["workers"][str(workers)] = entry
        if workers > 1:
            # 3% tolerance absorbs scheduler-loop noise on the "at
            # least as fast" side; the strictly-better bar at 4+ has
            # real margin behind it (both stragglers on one static
            # chunk) so it gets no tolerance.
            if wall["steal"] > wall["static"] * 1.03:
                never_worse = False
            if workers >= 4 and wall["steal"] >= wall["static"]:
                strictly_better_at_4 = False
    out["parity_ok"] = parity
    out["steal_never_worse"] = never_worse
    out["steal_strictly_better_at_4"] = strictly_better_at_4
    return out


def run_socket_parity(workers: int = 2, shards: int = 4,
                      base_seed: int = 17) -> dict:
    """The same campaign through a localhost TCP worker agent must
    produce the byte-identical digest the serial run does."""
    from repro.parallel import local_agents

    campaign = build_sweep(shards, base_seed, detonation_wait=0.0,
                           subfarms=1, inmates=1, rounds=5,
                           duration=30.0)
    serial = run_campaign(campaign, workers=1)
    with local_agents(1) as endpoints:
        sock = run_campaign(campaign, workers=workers, hosts=endpoints)
    return {
        "endpoints": 1,
        "workers": workers,
        "digest_parity": sock.digest == serial.digest,
        "telemetry_parity": sock.merged.get("telemetry")
        == serial.merged.get("telemetry"),
        "ok": sock.ok,
        "wall_seconds": round(sock.wall_seconds, 3),
        "hosts": sock.merged.get("hosts"),
    }


def run_crash_isolation(workers: int = 2, hosts=None) -> dict:
    """A campaign with one worker-killing shard must complete, with
    exactly that shard reporting a structured crash — over any
    transport."""
    specs = [
        ShardSpec(0, "repro.parallel.tasks:noop_shard", {"seed": 1}),
        ShardSpec(1, "repro.parallel.tasks:crashing_shard", {"seed": 2}),
        ShardSpec(2, "repro.parallel.tasks:noop_shard", {"seed": 3}),
        ShardSpec(3, "repro.parallel.tasks:noop_shard", {"seed": 4}),
    ]
    result = run_campaign(Campaign("crash-isolation", specs),
                          workers=workers, chunk_size=1, hosts=hosts)
    failures = result.failures
    ok = (
        len(result.shard_results) == 4
        and len(failures) == 1
        and failures[0]["shard"] == 1
        and failures[0]["kind"] == "crash"
        and all(r.ok for r in result.shard_results if r.index != 1)
    )
    return {"ok": ok, "failures": failures}


def _quick(args, socket_mode: bool) -> int:
    campaign = build_sweep(4, args.seed, detonation_wait=0.0,
                           subfarms=2, inmates=2, rounds=40,
                           duration=90.0)
    workers = max(2, args.workers)
    if socket_mode:
        from repro.parallel import local_agents

        serial = run_campaign(campaign, workers=1)
        with local_agents(1) as endpoints:
            sock = run_campaign(campaign, workers=workers,
                                hosts=endpoints)
            crash = run_crash_isolation(workers=workers,
                                        hosts=endpoints)
        sweep = {
            "digest": serial.digest,
            "digest_parity": {str(workers):
                              sock.digest == serial.digest},
            "parity_ok": sock.digest == serial.digest,
            "telemetry_parity": sock.merged.get("telemetry")
            == serial.merged.get("telemetry"),
            "transport": "socket",
        }
    else:
        worker_counts = [1] if args.workers <= 1 else [1, args.workers]
        sweep = run_sweep(campaign, worker_counts)
        crash = run_crash_isolation(workers=workers) \
            if args.workers > 1 else {"ok": True, "skipped": "serial"}
    print(json.dumps({"sweep": sweep, "crash_isolation": crash},
                     indent=2))
    if not sweep["parity_ok"]:
        print("FAIL: serial vs parallel campaign digests differ",
              file=sys.stderr)
        return 1
    if not sweep["telemetry_parity"]:
        print("FAIL: merged telemetry snapshots differ",
              file=sys.stderr)
        return 1
    if not crash["ok"]:
        print("FAIL: crash isolation violated", file=sys.stderr)
        return 1
    print("parallel determinism OK"
          + (" (socket transport)" if socket_mode else ""))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="parity + crash-isolation smoke (CI); "
                             "no JSON file")
    parser.add_argument("--quick-socket", action="store_true",
                        help="the --quick smoke dispatched to a "
                             "localhost worker agent over TCP")
    parser.add_argument("--workers", type=int, default=2,
                        help="quick-mode parallel worker count "
                             "(1 exercises only the serial fallback)")
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--subfarms", type=int, default=2)
    parser.add_argument("--inmates", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=100)
    parser.add_argument("--duration", type=float, default=200.0)
    parser.add_argument("--detonation-wait", type=float, default=3.5,
                        help="modelled wall-clock detonation/reimage "
                             "time per shard (campaign sweep)")
    parser.add_argument("--straggler-wait", type=float, default=1.2,
                        help="detonation wait of the two straggler "
                             "shards (straggler sweep)")
    parser.add_argument("--output", default=os.path.join(
        REPO_ROOT, "BENCH_parallel.json"))
    args = parser.parse_args(argv)

    if args.quick or args.quick_socket:
        return _quick(args, socket_mode=args.quick_socket)

    worker_counts = [1, 2, 4, 8]
    farm_params = dict(subfarms=args.subfarms, inmates=args.inmates,
                       rounds=args.rounds, duration=args.duration)

    campaign_sweep = run_sweep(
        build_sweep(args.shards, args.seed,
                    detonation_wait=args.detonation_wait, **farm_params),
        worker_counts)
    cpu_sweep = run_sweep(
        build_sweep(args.shards, args.seed, detonation_wait=0.0,
                    **farm_params),
        worker_counts)
    straggler = run_straggler_comparison(
        build_straggler_sweep(16, args.seed,
                              straggler_wait=args.straggler_wait,
                              base_wait=0.1),
        worker_counts)
    socket_parity = run_socket_parity()
    crash = run_crash_isolation()

    result = {
        "benchmark": "bench_parallel_scaling",
        "config": {
            "shards": args.shards,
            "seed": args.seed,
            "detonation_wait": args.detonation_wait,
            "straggler_wait": args.straggler_wait,
            "host_cpus": os.cpu_count(),
            "sched_cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity") else None,
            "python": sys.version.split()[0],
            **farm_params,
        },
        "campaign": campaign_sweep,
        "cpu_bound": cpu_sweep,
        "straggler": straggler,
        "socket": socket_parity,
        "crash_isolation": crash,
        "speedup_at_4_workers": campaign_sweep["workers"]["4"]["speedup"],
    }
    print(json.dumps(result, indent=2))
    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.output}")

    ok = (campaign_sweep["parity_ok"] and cpu_sweep["parity_ok"]
          and campaign_sweep["telemetry_parity"]
          and straggler["parity_ok"] and straggler["steal_never_worse"]
          and straggler["steal_strictly_better_at_4"]
          and socket_parity["digest_parity"] and socket_parity["ok"]
          and crash["ok"])
    if result["speedup_at_4_workers"] < 2.5:
        print(f"WARN: campaign speedup at 4 workers is "
              f"{result['speedup_at_4_workers']}x (< 2.5x target)",
              file=sys.stderr)
    if not ok:
        print("FAIL: determinism, isolation, or scheduler contract "
              "violated", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
