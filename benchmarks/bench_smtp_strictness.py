"""§7.1 "Protocol violations": sink strictness vs bot dialects."""

from __future__ import annotations

from conftest import once

from repro.experiments.smtp_strictness import run_matrix


def render(matrix) -> str:
    lines = [
        "SMTP sink strictness vs spambot dialects (§7.1)",
        "",
        f"{'FAMILY':<8} {'SINK':<8} {'SESSIONS':>8} {'DATA XFERS':>10} "
        f"{'CONTENT RATIO':>13}",
        "-" * 54,
    ]
    for (family, strictness), cell in matrix.items():
        lines.append(
            f"{family:<8} {strictness:<8} {cell.sessions:>8} "
            f"{cell.data_transfers:>10} {cell.content_ratio:>13.2f}"
        )
    lines.append("-" * 54)
    lines.append(
        "Connection-level accounting looks healthy everywhere; only the\n"
        "lenient state machine reaches DATA for dialect-quirky bots."
    )
    return "\n".join(lines)


def test_smtp_strictness(benchmark, emit):
    matrix = once(benchmark, run_matrix, duration=600.0)
    emit("smtp_strictness", render(matrix))
    assert matrix[("grum", "strict")].sessions > 20
    assert matrix[("grum", "strict")].data_transfers == 0
    assert matrix[("grum", "lenient")].content_ratio > 0.9
    assert matrix[("megad", "strict")].content_ratio > 0.9
