"""Figure 7: the Botfarm activity report, regenerated."""

from __future__ import annotations

import os

from conftest import once

from repro.experiments.figure7 import run_figure7

# Default: a 20-simulated-minute run (REFLECT counts in the hundreds).
# GQ_BENCH_DAY=1 runs a full simulated day at a realistic per-bot send
# rate, reaching the paper's ~10^5-flow REFLECT magnitudes (a few
# minutes of wall time; streaming analyzers keep memory bounded).
DAY = bool(os.environ.get("GQ_BENCH_DAY"))
DURATION = 86400.0 if DAY else 1200.0
SEND_INTERVAL = 4.0 if DAY else 0.5


def test_fig7_report(benchmark, emit):
    result = once(benchmark, run_figure7, duration=DURATION,
                  send_interval=SEND_INTERVAL)
    emit("fig7_report", result.rendered)

    totals = result.verdict_totals
    # The Figure 7 shape: REFLECT SMTP containment dwarfs the C&C
    # lifeline, REWRITE covers autoinfection plus Rustock's beacon
    # filtering, and sink drops make sessions exceed DATA transfers.
    assert totals["REFLECT"] > 10 * totals["FORWARD"]
    assert totals["REWRITE"] >= 4
    assert result.smtp_sessions > result.smtp_data_transfers
    assert result.sink_sessions_dropped > 0
    assert result.spam_delivered_outside == 0
    assert "Rustock [" in result.rendered and "Grum [" in result.rendered
    assert f"autoinfection {result.sample_md5s['rustock']}" in result.rendered
