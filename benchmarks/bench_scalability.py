"""§7.2 system scalability: VLAN ceiling, containment-server cluster,
gateway operating point."""

from __future__ import annotations

from conftest import once

from repro.experiments.scalability import (
    run_cs_load,
    run_gateway_load,
    vlan_capacity_demo,
)

SWEEP = [(4, 1), (8, 1), (12, 1), (12, 2), (12, 4)]


def _run():
    vlan = vlan_capacity_demo()
    cs = [run_cs_load(inmates, cluster, duration=200.0)
          for inmates, cluster in SWEEP]
    gateway = run_gateway_load(subfarms=6, inmates_per=12,
                               flow_interval=5.0, duration=200.0)
    return vlan, cs, gateway


def render(vlan, cs_results, gateway) -> str:
    lines = [
        "System scalability (§7.2)",
        "",
        f"1. VLAN ID pool: {vlan['capacity']} usable IDs "
        "(IEEE 802.1Q, 12 bits) — hard ceiling on inmates per network",
        "",
        "2. Containment-server load (verdict queue under flow load):",
        f"   {'INMATES':>7} {'CLUSTER':>7} {'VERDICTS':>8} "
        f"{'MEAN DELAY':>10} {'MAX DELAY':>9} {'BALANCE'}",
    ]
    for result in cs_results:
        lines.append(
            f"   {result.inmates:>7} {result.cluster_size:>7} "
            f"{result.verdicts:>8} "
            f"{result.mean_queue_delay * 1000:>8.1f}ms "
            f"{result.max_queue_delay * 1000:>7.1f}ms "
            f"{result.load_balance}"
        )
    lines.extend([
        "",
        "3. Gateway at the paper's operating point "
        "(5-6 subfarms, a dozen inmates each):",
        f"   subfarms={gateway.subfarms} inmates/subfarm="
        f"{gateway.inmates_per}",
        f"   flows carried      : {gateway.flows_created}",
        f"   packets relayed    : {gateway.packets_relayed}",
        f"   flows/simulated-sec: "
        f"{gateway.flows_per_simulated_second:.1f}",
    ])
    return "\n".join(lines)


def test_scalability(benchmark, emit):
    vlan, cs_results, gateway = once(benchmark, _run)
    emit("scalability", render(vlan, cs_results, gateway))

    assert vlan["capacity"] == 4093
    by_key = {(r.inmates, r.cluster_size): r for r in cs_results}
    # Single server: delay grows with inmates.
    assert (by_key[(12, 1)].mean_queue_delay
            > by_key[(4, 1)].mean_queue_delay)
    # Cluster: delay falls as members are added.
    assert (by_key[(12, 4)].mean_queue_delay
            < by_key[(12, 2)].mean_queue_delay
            < by_key[(12, 1)].mean_queue_delay)
    # The gateway comfortably carries the paper's operating point.
    assert gateway.flows_created > 1000
