"""§7.1 "Unclear phylogenies": batch classification of a sample corpus."""

from __future__ import annotations

import os

from conftest import once

from repro.experiments.classification import (
    run_classification,
    run_split_personality,
)

CORPUS_SIZE = 30 if os.environ.get("GQ_BENCH_QUICK") else 120


def _run():
    classification = run_classification(corpus_size=CORPUS_SIZE,
                                        duration=150.0)
    split = run_split_personality(executions=10, duration=150.0)
    return classification, split


def render(classification, split) -> str:
    lines = [
        "Fingerprint-based batch classification (§7.1; the paper "
        "classified ~10,000 samples this way)",
        "",
        f"corpus size          : {classification.total}",
        f"correctly classified : {classification.correct} "
        f"({classification.accuracy:.1%})",
        f"unknown              : {classification.unknown}",
        f"AV-label disagreement: {classification.label_disagreements} "
        "(split personalities / mislabels surfaced)",
        "",
        "Confusion (true -> predicted):",
    ]
    for (truth, predicted), count in sorted(classification.confusion.items()):
        lines.append(f"    {truth:<18} -> {str(predicted):<18} {count}")
    lines.append("")
    lines.append(
        "Split-personality binary across reverted executions "
        f"(AV label 'megad'): {split}"
    )
    return "\n".join(lines)


def test_classification(benchmark, emit):
    classification, split = once(benchmark, _run)
    emit("classification", render(classification, split))
    assert classification.accuracy > 0.9
    assert classification.label_disagreements > 0
    assert "grum" in split and "megad" in split
