"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered artifact is written to ``benchmarks/output/`` and echoed to
stdout (run with ``-s`` to see it live); the pytest-benchmark fixture
times the underlying experiment.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture
def emit():
    """``emit(name, text)`` — persist and print a rendered artifact."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> pathlib.Path:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text)
        print(f"\n===== {name} =====")
        print(text)
        return path

    return _emit


def once(benchmark, function, *args, **kwargs):
    """Run a heavyweight scenario exactly once under the timer."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
