"""Figure 4: the shim protocol wire format.

Renders the exact byte layout and micro-benchmarks encode/decode
(these run on every flow the farm carries, so their cost matters —
the one place pytest-benchmark's statistics are the point)."""

from __future__ import annotations

from repro.core.shim import (
    REQUEST_SHIM_LEN,
    RESPONSE_SHIM_MIN_LEN,
    RequestShim,
    ResponseShim,
)
from repro.core.verdicts import Verdict
from repro.net.addresses import IPv4Address
from repro.net.flow import FiveTuple
from repro.net.packet import PROTO_TCP

FLOW = FiveTuple(IPv4Address("10.0.0.23"), 1234,
                 IPv4Address("192.150.187.12"), 80, PROTO_TCP)


def hexdump(data: bytes) -> str:
    lines = []
    for offset in range(0, len(data), 8):
        chunk = data[offset:offset + 8]
        hexes = " ".join(f"{b:02x}" for b in chunk)
        lines.append(f"  {offset:4d}: {hexes}")
    return "\n".join(lines)


def render() -> str:
    request = RequestShim(FLOW, vlan_id=12, nonce_port=42)
    response = ResponseShim(FLOW, Verdict.REWRITE, policy="Rustock",
                            annotation="C&C filtering")
    raw_request = request.to_bytes()
    raw_response = response.to_bytes()
    return "\n".join([
        "Figure 4 — shim protocol message structure",
        "",
        f"(a) Request shim — {len(raw_request)} bytes "
        f"(spec: exactly {REQUEST_SHIM_LEN})",
        "    magic | len | type | ver | orig IP | resp IP | ports | "
        "VLAN | nonce",
        hexdump(raw_request),
        "",
        f"(b) Response shim — {len(raw_response)} bytes "
        f"(spec: at least {RESPONSE_SHIM_MIN_LEN})",
        "    preamble | four-tuple | verdict opcode | policy tag (32) | "
        "annotation",
        hexdump(raw_response),
    ])


def test_fig4_request_encode(benchmark, emit):
    emit("fig4_shim_layout", render())
    shim = RequestShim(FLOW, vlan_id=12, nonce_port=42)
    raw = benchmark(shim.to_bytes)
    assert len(raw) == REQUEST_SHIM_LEN


def test_fig4_request_decode(benchmark):
    raw = RequestShim(FLOW, vlan_id=12, nonce_port=42).to_bytes()
    parsed = benchmark(RequestShim.from_bytes, raw)
    assert parsed.vlan_id == 12


def test_fig4_response_encode(benchmark):
    shim = ResponseShim(FLOW, Verdict.REWRITE, policy="Rustock",
                        annotation="C&C filtering")
    raw = benchmark(shim.to_bytes)
    assert len(raw) >= RESPONSE_SHIM_MIN_LEN


def test_fig4_response_decode(benchmark):
    raw = ResponseShim(FLOW, Verdict.REWRITE, policy="Rustock",
                       annotation="C&C filtering").to_bytes()
    parsed = benchmark(ResponseShim.from_bytes, raw)
    assert parsed.verdict == Verdict.REWRITE
