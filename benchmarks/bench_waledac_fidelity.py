"""§7.1 "Mysterious blacklisting" / "Satisfying fidelity" (Waledac)."""

from __future__ import annotations

from conftest import once

from repro.experiments.waledac_fidelity import run_all


def render(results) -> str:
    lines = [
        "Waledac containment configurations (§7.1)",
        "",
        f"{'MODE':<16} {'BOT ALIVE':>9} {'HARVESTED':>9} "
        f"{'SENT OUTSIDE':>12} {'BLACKLISTED':>11} {'BANNER GRABS':>12}",
        "-" * 76,
    ]
    for mode, result in results.items():
        lines.append(
            f"{mode:<16} {'yes' if result.bot_alive else 'no':>9} "
            f"{result.sink_data_transfers:>9} "
            f"{result.spam_delivered_outside:>12} "
            f"{'LISTED' if result.inmate_blacklisted else 'clean':>11} "
            f"{result.banner_fetches:>12}"
        )
    lines.append("-" * 76)
    lines.append(
        "Paper narrative: the permitted test message got the inmates CBL-"
        "listed\n(recognizable wergvan HELO); the plain sink silenced the "
        "bots; banner\ngrabbing restored fidelity with zero outside "
        "interaction."
    )
    return "\n".join(lines)


def test_waledac_fidelity(benchmark, emit):
    results = once(benchmark, run_all, duration=900.0)
    emit("waledac_fidelity", render(results))

    test_message = results["test-message"]
    assert test_message.inmate_blacklisted
    assert test_message.spam_delivered_outside >= 1

    plain = results["plain-sink"]
    assert not plain.bot_alive
    assert plain.sink_data_transfers == 0
    assert not plain.inmate_blacklisted

    grabbing = results["banner-grabbing"]
    assert grabbing.bot_alive
    assert grabbing.sink_data_transfers > 50
    assert grabbing.spam_delivered_outside == 0
    assert not grabbing.inmate_blacklisted
